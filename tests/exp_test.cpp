// Tests for the parallel experiment engine: the thread pool, the shared
// trace store, plan/runner determinism (the bit-identical-across---jobs
// contract), JSON serialization, and the shared CLI harness.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "baselines/fcfs.h"
#include "baselines/static_hash.h"
#include "exp/experiment.h"
#include "exp/harness.h"
#include "exp/trace_store.h"
#include "sim/report_json.h"
#include "sim/runner.h"
#include "trace/synthetic.h"
#include "util/flags.h"
#include "util/json_writer.h"
#include "util/thread_pool.h"

namespace laps {
namespace {

// ------------------------------------------------------------- ThreadPool ---

TEST(ThreadPool, DestructorDrainsEveryQueuedTask) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 1000; ++i) {
      pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    // Destruction races with execution: shutdown must still run all 1000.
  }
  EXPECT_EQ(done.load(), 1000);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 21 * 2; });
  auto bad = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_EQ(ok.get(), 42);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker survives a throwing task and keeps executing.
  auto after = pool.submit([] { return 7; });
  EXPECT_EQ(after.get(), 7);
}

TEST(ThreadPool, ResolveMapsZeroToHardwareConcurrency) {
  EXPECT_GE(ThreadPool::resolve(0), 1u);
  EXPECT_EQ(ThreadPool::resolve(3), 3u);
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyProducersOneResultEach) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  futures.reserve(64);
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 64; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ParallelIndexMap, ResultsInIndexOrderRegardlessOfJobs) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
    const auto out = parallel_index_map(
        jobs, 100, [](std::size_t i) { return static_cast<int>(i) * 3; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i) * 3);
    }
  }
}

TEST(ParallelIndexMap, ZeroItemsYieldsEmpty) {
  const auto out =
      parallel_index_map(4, 0, [](std::size_t) { return 1; });
  EXPECT_TRUE(out.empty());
}

// ------------------------------------------------------------- TraceStore ---

TEST(TraceStore, CursorReplaysExactlyTheDirectTrace) {
  TraceStore store;
  auto cursor = store.open("auck1");
  auto direct = make_trace("auck1");
  for (int i = 0; i < 5'000; ++i) {
    const auto a = cursor->next();
    const auto b = direct->next();
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    ASSERT_EQ(a->tuple.key64(), b->tuple.key64()) << "record " << i;
    ASSERT_EQ(a->flow_id, b->flow_id);
    ASSERT_EQ(a->size_bytes, b->size_bytes);
  }
}

TEST(TraceStore, ResetReplaysIdentically) {
  TraceStore store;
  auto cursor = store.open("auck1");
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 1'000; ++i) first.push_back(cursor->next()->tuple.key64());
  cursor->reset();
  for (int i = 0; i < 1'000; ++i) {
    ASSERT_EQ(cursor->next()->tuple.key64(), first[i]) << "record " << i;
  }
}

TEST(TraceStore, TwoCursorsShareOneMaterialization) {
  TraceStore store;
  auto a = store.open("auck2");
  auto b = store.open("auck2");
  // Interleave reads at different paces; both see the same stream.
  std::vector<std::uint64_t> seen_a, seen_b;
  for (int i = 0; i < 300; ++i) seen_a.push_back(a->next()->tuple.key64());
  for (int i = 0; i < 900; ++i) seen_b.push_back(b->next()->tuple.key64());
  for (int i = 0; i < 600; ++i) seen_a.push_back(a->next()->tuple.key64());
  ASSERT_EQ(seen_a.size(), 900u);
  EXPECT_EQ(seen_a, seen_b);
  // Materialized once, to the farthest position, not per cursor.
  EXPECT_EQ(store.materialized("auck2"), 900u);
}

TEST(TraceStore, OverflowFallsBackToPrivateReplaySeamlessly) {
  // A 256-record sharing budget forces the cursor into private-overflow
  // mode; the stream must still match the direct trace bit for bit.
  TraceStore store(/*max_shared_records=*/256);
  auto cursor = store.open("caida1");
  auto direct = make_trace("caida1");
  for (int i = 0; i < 2'000; ++i) {
    ASSERT_EQ(cursor->next()->tuple.key64(), direct->next()->tuple.key64())
        << "record " << i << " (overflow boundary at 256)";
  }
  EXPECT_EQ(store.materialized("caida1"), 256u);
  // Reset drops the overflow source and replays the shared prefix again.
  cursor->reset();
  auto direct2 = make_trace("caida1");
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(cursor->next()->tuple.key64(), direct2->next()->tuple.key64());
  }
}

TEST(TraceStore, ForwardsMetadataThroughCursor) {
  TraceStore store;
  auto cursor = store.open("auck1");
  auto direct = make_trace("auck1");
  EXPECT_EQ(cursor->name(), direct->name());
  EXPECT_EQ(cursor->flow_count_hint(), direct->flow_count_hint());
  std::vector<std::uint16_t> sa, sb;
  std::vector<double> wa, wb;
  EXPECT_TRUE(cursor->size_mix(sa, wa));
  EXPECT_TRUE(direct->size_mix(sb, wb));
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(wa, wb);
}

TEST(TraceStore, RegisteredTraceEndsAtEof) {
  TraceStore store;
  class FiniteSource final : public TraceSource {
   public:
    std::optional<PacketRecord> next() override {
      if (pos_ >= 40) return std::nullopt;
      PacketRecord rec;
      rec.flow_id = pos_++;
      return rec;
    }
    void reset() override { pos_ = 0; }
    std::string name() const override { return "finite40"; }

   private:
    std::uint32_t pos_ = 0;
  };
  store.register_trace("finite40", [] { return std::make_shared<FiniteSource>(); });
  auto cursor = store.open("finite40");
  int n = 0;
  while (cursor->next()) ++n;
  EXPECT_EQ(n, 40);
  EXPECT_FALSE(cursor->next().has_value()) << "EOF is sticky";
  cursor->reset();
  n = 0;
  while (cursor->next()) ++n;
  EXPECT_EQ(n, 40);
}

TEST(TraceStore, ConcurrentCursorsSeeOneConsistentStream) {
  TraceStore store;
  constexpr int kRecords = 20'000;
  std::vector<std::vector<std::uint64_t>> streams(4);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&store, &streams, t] {
        auto cursor = store.open("auck3");
        for (int i = 0; i < kRecords; ++i) {
          streams[t].push_back(cursor->next()->tuple.key64());
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  for (int t = 1; t < 4; ++t) {
    ASSERT_EQ(streams[t], streams[0]) << "cursor " << t << " diverged";
  }
}

TEST(TraceStore, UnknownTraceNameThrows) {
  TraceStore store;
  EXPECT_THROW(store.open("no_such_trace"), std::out_of_range);
}

// ------------------------------------------------------- plan and runner ---

ScenarioConfig tiny_config(const std::string& name, std::uint64_t seed,
                           std::shared_ptr<TraceSource> trace) {
  ScenarioConfig cfg;
  cfg.name = name;
  cfg.num_cores = 2;
  cfg.seconds = 0.004;
  cfg.seed = seed;
  ServiceTraffic s;
  s.path = ServicePath::kIpForward;
  s.rate = HoltWintersParams{2.0, 0.0, 0.0, 10.0, 0.0};
  s.trace = std::move(trace);
  cfg.services = {s};
  return cfg;
}

ExperimentPlan tiny_plan(std::shared_ptr<TraceStore> store,
                         std::uint64_t plan_seed = 7) {
  const std::vector<SchedulerSpec> schedulers = {
      {"FCFS", [] { return std::make_unique<FcfsScheduler>(); }},
      {"StaticHash", [] { return std::make_unique<StaticHashScheduler>(); }},
  };
  ExperimentPlan plan(plan_seed);
  plan.add_grid({"auck1", "auck2"}, schedulers, plan.replicate_seeds(2),
                [store](const std::string& trace, std::uint64_t seed) {
                  return tiny_config(trace, seed, store->open(trace));
                });
  return plan;
}

TEST(ExperimentPlan, DeriveSeedIsDeterministicAndSpread) {
  EXPECT_EQ(ExperimentPlan::derive_seed(1, 0), ExperimentPlan::derive_seed(1, 0));
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 64; ++s) {
    seeds.insert(ExperimentPlan::derive_seed(42, s));
  }
  EXPECT_EQ(seeds.size(), 64u) << "streams must not collide";
  EXPECT_NE(ExperimentPlan::derive_seed(1, 0), ExperimentPlan::derive_seed(2, 0));
}

TEST(ExperimentPlan, GridExpandsScenarioMajor) {
  auto store = std::make_shared<TraceStore>();
  const auto plan = tiny_plan(store);
  ASSERT_EQ(plan.size(), 8u);  // 2 traces x 2 schedulers x 2 seeds
  EXPECT_EQ(plan.jobs()[0].scenario, "auck1");
  EXPECT_EQ(plan.jobs()[0].scheduler, "FCFS");
  EXPECT_EQ(plan.jobs()[1].scheduler, "FCFS");
  EXPECT_NE(plan.jobs()[0].seed, plan.jobs()[1].seed);
  EXPECT_EQ(plan.jobs()[2].scheduler, "StaticHash");
  EXPECT_EQ(plan.jobs()[4].scenario, "auck2");
}

TEST(ExperimentPlan, RejectsNullJobAndBuilder) {
  ExperimentPlan plan;
  EXPECT_THROW(plan.add("s", "x", 0, nullptr), std::invalid_argument);
  EXPECT_THROW(plan.add_grid({"a"}, {{"x", nullptr}}, {1},
                             [](const std::string&, std::uint64_t) {
                               return ScenarioConfig{};
                             }),
               std::invalid_argument);
}

TEST(ParallelRunner, EmptyPlanYieldsEmptyResults) {
  ExperimentPlan plan;
  ParallelRunner runner(4);
  const auto results = runner.run(plan);
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(runner.stats().jobs_used, 0u);
}

TEST(ParallelRunner, ResultsInPlanOrderWithPlanLabels) {
  auto store = std::make_shared<TraceStore>();
  const auto plan = tiny_plan(store);
  ParallelRunner runner(4);
  const auto results = runner.run(plan);
  ASSERT_EQ(results.size(), plan.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].index, i);
    EXPECT_EQ(results[i].scenario, plan.jobs()[i].scenario);
    EXPECT_EQ(results[i].scheduler, plan.jobs()[i].scheduler);
    EXPECT_EQ(results[i].report.scenario, plan.jobs()[i].scenario);
    EXPECT_EQ(results[i].report.scheduler, plan.jobs()[i].scheduler);
    EXPECT_GT(results[i].report.offered, 0u);
  }
}

// Containment contract: a throwing job fails its own cell — captured as a
// structured JobError — and never propagates out of run() or disturbs the
// rest of the grid.
TEST(ParallelRunner, JobExceptionIsContainedAsJobError) {
  ExperimentPlan plan;
  plan.add("boom", "X", 0, []() -> SimReport {
    throw std::runtime_error("job exploded");
  });
  plan.add("fine", "X", 1, []() -> SimReport {
    SimReport r;
    r.offered = 7;
    return r;
  });
  ParallelRunner runner(2);
  const auto results = runner.run(plan);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].error->kind, "exception");
  EXPECT_EQ(results[0].error->message, "job exploded");
  EXPECT_EQ(results[0].error->attempts, 1u);
  ASSERT_TRUE(results[1].ok());
  EXPECT_EQ(results[1].report.offered, 7u);
  EXPECT_EQ(runner.stats().jobs_failed, 1u);
}

// The tentpole contract: identical artifacts whatever --jobs is. Each run
// gets a fresh store (stores are shared within a run, never across runs).
TEST(ParallelRunner, ArtifactBytesIdenticalAcrossThreadCounts) {
  auto artifact_at = [](std::size_t jobs) {
    auto store = std::make_shared<TraceStore>();
    const auto plan = tiny_plan(store);
    ParallelRunner runner(jobs);
    return artifact_json("determinism_test", runner.run(plan));
  };
  const std::string serial = artifact_at(1);
  EXPECT_EQ(serial, artifact_at(4));
  EXPECT_EQ(serial, artifact_at(0));  // hardware concurrency
}

// A tiny shared budget forces some jobs through the overflow path; the
// artifact must still be identical to the unbounded-store run.
TEST(ParallelRunner, SharedBudgetDoesNotAffectResults) {
  auto artifact_with_budget = [](std::size_t budget) {
    auto store = std::make_shared<TraceStore>(budget);
    const auto plan = tiny_plan(store);
    ParallelRunner runner(4);
    return artifact_json("budget_test", runner.run(plan));
  };
  EXPECT_EQ(artifact_with_budget(128), artifact_with_budget(1 << 20));
}

// ------------------------------------------------------------------ JSON ---

TEST(JsonWriter, EscapesAndFormatsDeterministically) {
  JsonWriter w;
  w.begin_object();
  w.field("s", std::string("a\"b\\c\n\t\x01"));
  w.field("t", true);
  w.field("i", std::int64_t{-3});
  w.field("u", std::uint64_t{18446744073709551615ULL});
  w.field("d", 0.1);
  w.field("e", 1e300);
  w.key("a");
  w.begin_array();
  w.value(1);
  w.value(2);
  w.end_array();
  w.end_object();
  const std::string doc = w.str();
  EXPECT_NE(doc.find("\"a\\\"b\\\\c\\n\\t\\u0001\""), std::string::npos);
  EXPECT_NE(doc.find("18446744073709551615"), std::string::npos);
  EXPECT_NE(doc.find("\"d\": 0.1"), std::string::npos) << doc;
  EXPECT_NE(doc.find("1e+300"), std::string::npos) << doc;
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_object();
  w.field("nan", std::numeric_limits<double>::quiet_NaN());
  w.field("inf", std::numeric_limits<double>::infinity());
  w.end_object();
  EXPECT_NE(w.str().find("\"nan\": null"), std::string::npos);
  EXPECT_NE(w.str().find("\"inf\": null"), std::string::npos);
}

TEST(ReportJson, RoundTripStableAndSortedExtras) {
  SimReport r;
  r.scheduler = "LAPS";
  r.scenario = "T1";
  r.offered = 10;
  r.delivered = 8;
  r.dropped = 2;
  r.extra["zeta"] = 1.0;
  r.extra["alpha"] = 2.0;
  const std::string a = report_to_json(r);
  const std::string b = report_to_json(r);
  EXPECT_EQ(a, b);
  EXPECT_LT(a.find("\"alpha\""), a.find("\"zeta\"")) << "extras sorted";
  EXPECT_NE(a.find("\"drop_ratio\": 0.2"), std::string::npos) << a;
}

TEST(ArtifactJson, ContainsSchemaReportsAndTables) {
  Table t({"col1", "col2"});
  t.add_row({"a", "b"});
  JobResult res;
  res.scenario = "s1";
  res.scheduler = "FCFS";
  res.seed = 9;
  const std::string doc = artifact_json("mytool", {res}, {{"tbl", &t}});
  EXPECT_NE(doc.find("\"schema\": \"laps-bench-v1\""), std::string::npos);
  EXPECT_NE(doc.find("\"tool\": \"mytool\""), std::string::npos);
  EXPECT_NE(doc.find("\"seed\": 9"), std::string::npos);
  EXPECT_NE(doc.find("\"title\": \"tbl\""), std::string::npos);
  EXPECT_NE(doc.find("\"col1\""), std::string::npos);
  EXPECT_EQ(doc.back(), '\n');
}

TEST(ArtifactJson, NullTableIsAnError) {
  EXPECT_THROW(artifact_json("t", {}, {{"missing", nullptr}}),
               std::invalid_argument);
}

// --------------------------------------------------------------- harness ---

TEST(Harness, ParsesJobsAndJsonFlags) {
  const char* argv[] = {"prog", "--jobs=3", "--json=/tmp/x.json"};
  Flags flags(3, argv);
  const auto opts = parse_harness_flags(flags);
  EXPECT_EQ(opts.jobs, 3u);
  EXPECT_EQ(opts.json_path, "/tmp/x.json");
  flags.finish();
}

TEST(Harness, JobsZeroResolvesToHardwareConcurrency) {
  const char* argv[] = {"prog", "--jobs=0"};
  Flags flags(2, argv);
  const auto opts = parse_harness_flags(flags);
  EXPECT_GE(opts.jobs, 1u);
}

TEST(Harness, GuardedMainConvertsExceptionsToExitCode) {
  const char* argv[] = {"prog", "--definitely-unknown-flag"};
  const int rc = laps::guarded_main(
      2, const_cast<char**>(argv), [](Flags& flags) {
        flags.finish();  // throws: the flag was never consumed
        return 0;
      });
  EXPECT_EQ(rc, 1);

  const char* ok_argv[] = {"prog"};
  EXPECT_EQ(laps::guarded_main(1, const_cast<char**>(ok_argv),
                               [](Flags&) { return 0; }),
            0);
}

TEST(Harness, NegativeJobsRejected) {
  const char* argv[] = {"prog", "--jobs=-2"};
  Flags flags(2, argv);
  EXPECT_THROW(parse_harness_flags(flags), std::invalid_argument);
}

}  // namespace
}  // namespace laps
