// Tests for the extension modules: Toeplitz/RSS hashing, the Shi-Kencl
// adaptive-hashing schedulers, the egress reorder buffer (order
// restoration), and LAPS power gating.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "baselines/adaptive_hash.h"
#include "baselines/batch.h"
#include "baselines/fcfs.h"
#include "core/laps.h"
#include "sim/reorder_buffer.h"
#include "sim/runner.h"
#include "trace/synthetic.h"
#include "util/rng.h"
#include "util/toeplitz.h"

namespace laps {
namespace {

// --------------------------------------------------------------- Toeplitz ---

TEST(Toeplitz, MicrosoftVerificationVectorIpv4Tcp) {
  // NDIS RSS verification suite: source 66.9.149.187:2794,
  // destination 161.142.100.80:1766 -> hash 0x51ccc178 with the default key.
  ToeplitzHash hash;
  FiveTuple t;
  t.src_ip = (66u << 24) | (9u << 16) | (149u << 8) | 187u;
  t.dst_ip = (161u << 24) | (142u << 16) | (100u << 8) | 80u;
  t.src_port = 2794;
  t.dst_port = 1766;
  t.protocol = 6;
  EXPECT_EQ(hash.hash(t), 0x51ccc178u);
}

TEST(Toeplitz, SecondVerificationVector) {
  // Source 199.92.111.2:14230, destination 65.69.140.83:4739 -> 0xc626b0ea.
  ToeplitzHash hash;
  FiveTuple t;
  t.src_ip = (199u << 24) | (92u << 16) | (111u << 8) | 2u;
  t.dst_ip = (65u << 24) | (69u << 16) | (140u << 8) | 83u;
  t.src_port = 14230;
  t.dst_port = 4739;
  t.protocol = 6;
  EXPECT_EQ(hash.hash(t), 0xc626b0eau);
}

TEST(Toeplitz, DeterministicAndKeyDependent) {
  ToeplitzHash a;
  std::array<std::uint8_t, 40> other_key{};
  other_key.fill(0xA5);
  ToeplitzHash b(other_key);
  FiveTuple t{1, 2, 3, 4, 6};
  EXPECT_EQ(a.hash(t), a.hash(t));
  EXPECT_NE(a.hash(t), b.hash(t));
}

TEST(Toeplitz, SpreadsUniformly) {
  ToeplitzHash hash;
  SyntheticTraceSpec spec;
  spec.num_flows = 40'000;
  SyntheticTrace trace(spec);
  std::vector<int> hist(16, 0);
  for (std::uint32_t f = 0; f < 40'000; ++f) {
    ++hist[hash.hash(trace.tuple_of(f)) % 16];
  }
  const double expected = 40'000 / 16.0;
  double chi2 = 0;
  for (int c : hist) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 60.0);
}

TEST(NaiveFoldHash, IsPredictablyBad) {
  // Sequential addresses collide into sequential buckets — the failure
  // mode the ablation demonstrates.
  FiveTuple a{0x0A000001, 0xC0A80001, 1000, 80, 6};
  FiveTuple b = a;
  b.src_ip += 16;
  EXPECT_EQ((naive_fold_hash(b) - naive_fold_hash(a)) & 0xFFFF, 16);
}

// ----------------------------------------------------------- AdaptiveHash ---

class FakeView final : public NpuView {
 public:
  explicit FakeView(std::size_t n) : cores_(n) {
    for (auto& c : cores_) c.idle_since = 0;
  }
  TimeNs now() const override { return now_; }
  std::span<const CoreView> cores() const override {
    return {cores_.data(), cores_.size()};
  }
  std::uint32_t queue_capacity() const override { return 32; }

  TimeNs now_ = 0;
  std::vector<CoreView> cores_;
};

SimPacket make_packet(std::uint32_t flow) {
  SimPacket pkt;
  pkt.tuple.src_ip = 0x0A000000u + flow;
  pkt.tuple.dst_ip = static_cast<std::uint32_t>(mix64(flow) >> 32) | 1u;
  pkt.tuple.src_port = static_cast<std::uint16_t>(1024 + flow % 60000);
  pkt.tuple.dst_port = 80;
  pkt.tuple.protocol = 6;
  pkt.gflow = flow;
  pkt.service = ServicePath::kIpForward;
  return pkt;
}

TEST(AdaptiveHash, PreservesFlowAffinityBetweenRebalances) {
  AdaptiveHashScheduler::Options options;
  options.period = 1'000'000;  // no rebalance during this test
  AdaptiveHashScheduler sched(options);
  sched.attach(4);
  FakeView view(4);
  for (std::uint32_t f = 0; f < 100; ++f) {
    const CoreId home = sched.schedule(make_packet(f), view);
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(sched.schedule(make_packet(f), view), home);
    }
  }
  EXPECT_EQ(sched.extra_stats().at("bundle_moves"), 0.0);
}

TEST(AdaptiveHash, RebalancesSkewedBundles) {
  AdaptiveHashScheduler::Options options;
  options.period = 2'000;
  options.slack = 0.10;
  AdaptiveHashScheduler sched(options);
  sched.attach(4);
  FakeView view(4);
  // One extremely hot flow: its bundle dominates one core's measured load.
  const SimPacket hot = make_packet(7);
  for (int i = 0; i < 6'000; ++i) {
    sched.schedule(hot, view);
    sched.schedule(make_packet(100 + static_cast<std::uint32_t>(i % 500)),
                   view);
  }
  EXPECT_GT(sched.extra_stats().at("rebalances"), 0.0);
  EXPECT_GT(sched.extra_stats().at("bundle_moves"), 0.0);
  // After rebalancing, no core should hold much more than the average.
  std::uint64_t max_load = 0, total = 0;
  for (CoreId c = 0; c < 4; ++c) {
    const std::uint64_t load = sched.measured_core_load(c);
    max_load = std::max(max_load, load);
    total += load;
  }
  // The hot flow's own bundle is indivisible, so allow it to dominate, but
  // the rest must have been moved off its core.
  EXPECT_LT(static_cast<double>(max_load),
            0.75 * static_cast<double>(total));
}

TEST(AdaptiveHash, AttachResetsState) {
  AdaptiveHashScheduler sched;
  sched.attach(4);
  FakeView view(4);
  for (int i = 0; i < 100; ++i) sched.schedule(make_packet(1), view);
  sched.attach(4);
  EXPECT_EQ(sched.extra_stats().at("rebalances"), 0.0);
  EXPECT_EQ(sched.measured_core_load(0) + sched.measured_core_load(1) +
                sched.measured_core_load(2) + sched.measured_core_load(3),
            0u);
}

TEST(CombinedAdaptive, PinsAggressiveFlowsOnImbalance) {
  CombinedAdaptiveScheduler::CombinedOptions options;
  options.adaptive.period = 1'000'000;
  options.afd.afc_entries = 4;
  options.afd.annex_entries = 32;
  options.afd.promote_threshold = 2;
  CombinedAdaptiveScheduler sched(options);
  sched.attach(4);
  FakeView view(4);

  const SimPacket heavy = make_packet(3);
  const CoreId home = sched.schedule(heavy, view);
  for (int i = 0; i < 10; ++i) sched.schedule(heavy, view);
  view.cores_[home].queue_len = 30;
  const CoreId moved = sched.schedule(heavy, view);
  EXPECT_NE(moved, home);
  EXPECT_EQ(sched.extra_stats().at("aggressive_migrations"), 1.0);
  // Pin persists after the pressure clears.
  view.cores_[home].queue_len = 0;
  EXPECT_EQ(sched.schedule(heavy, view), moved);
}

TEST(CombinedAdaptive, ColdFlowsStayOnHashPath) {
  CombinedAdaptiveScheduler sched;
  sched.attach(4);
  FakeView view(4);
  const SimPacket pkt = make_packet(5);
  const CoreId home = sched.schedule(pkt, view);
  view.cores_[home].queue_len = 30;
  EXPECT_EQ(sched.schedule(pkt, view), home);
}

// -------------------------------------------------------- BatchScheduler ---

TEST(Batch, SticksForBatchThenRebalances) {
  BatchScheduler sched(4);
  sched.attach(4);
  FakeView view(4);
  const SimPacket pkt = make_packet(9);
  const CoreId first = sched.schedule(pkt, view);
  // Next 3 packets finish the batch on the same core.
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(sched.schedule(pkt, view), first);
  }
  // New batch: with the old core loaded, the flow moves.
  view.cores_[first].queue_len = 20;
  const CoreId second = sched.schedule(pkt, view);
  EXPECT_NE(second, first);
  EXPECT_EQ(sched.extra_stats().at("batches_opened"), 2.0);
}

TEST(Batch, BatchSizeOneIsFcfs) {
  BatchScheduler sched(1);
  sched.attach(4);
  FakeView view(4);
  view.cores_[2].queue_len = 0;
  view.cores_[0].queue_len = 5;
  view.cores_[1].queue_len = 5;
  view.cores_[3].queue_len = 5;
  const SimPacket pkt = make_packet(1);
  EXPECT_EQ(sched.schedule(pkt, view), 2u);
  view.cores_[2].queue_len = 9;
  view.cores_[3].queue_len = 0;
  EXPECT_EQ(sched.schedule(pkt, view), 3u)
      << "batch size 1 re-picks the minimum every packet";
  EXPECT_EQ(sched.extra_stats().at("active_flow_state"), 0.0);
}

TEST(Batch, StateReclaimedAfterBatch) {
  BatchScheduler sched(2);
  sched.attach(2);
  FakeView view(2);
  for (std::uint32_t f = 0; f < 100; ++f) {
    const SimPacket pkt = make_packet(f);
    sched.schedule(pkt, view);
    sched.schedule(pkt, view);  // completes the 2-packet batch
  }
  EXPECT_EQ(sched.extra_stats().at("active_flow_state"), 0.0);
}

TEST(Batch, BoundsMigrationsAndReorderingVersusFcfs) {
  // End to end: a flow can hop cores at most once per batch, so migrations
  // collapse by ~the batch size versus per-packet spraying, and reordering
  // (only possible at batch boundaries) drops with them. Moderate load:
  // near saturation, deep divergent queues reorder every boundary packet
  // and batching's OOO advantage shrinks toward FCFS's — the cost Guo et
  // al. accept for balance.
  ScenarioConfig cfg;
  cfg.num_cores = 4;
  cfg.seconds = 0.01;
  cfg.seed = 21;
  ServiceTraffic s;
  s.path = ServicePath::kIpForward;
  s.rate = HoltWintersParams{5.0, 0.0, 0.0, 10.0, 0.0};  // ~62% load
  SyntheticTraceSpec spec;
  spec.num_flows = 300;
  spec.seed = 8;
  s.trace = std::make_shared<SyntheticTrace>(spec);
  cfg.services = {s};

  FcfsScheduler fcfs;
  const auto fcfs_report = run_scenario(cfg, fcfs);
  BatchScheduler batch(64);
  const auto batch_report = run_scenario(cfg, batch);
  EXPECT_LT(batch_report.flow_migrations * 10, fcfs_report.flow_migrations);
  EXPECT_LT(batch_report.out_of_order, fcfs_report.out_of_order);
}

// ---------------------------------------------------------- ReorderBuffer ---

TEST(ReorderBuffer, InOrderStreamPassesThrough) {
  ReorderBuffer rob;
  for (std::uint32_t seq = 0; seq < 100; ++seq) {
    const auto released = rob.on_complete(1, seq, seq * 10);
    ASSERT_EQ(released.size(), 1u);
    EXPECT_EQ(released[0].seq, seq);
    EXPECT_EQ(released[0].held_ns, 0);
  }
  EXPECT_EQ(rob.occupancy(), 0u);
  EXPECT_EQ(rob.buffered_total(), 0u);
  EXPECT_EQ(rob.released_total(), 100u);
}

TEST(ReorderBuffer, HoldsEarlyCompletionUntilGapFills) {
  ReorderBuffer rob;
  EXPECT_TRUE(rob.on_complete(1, 1, 100).empty());  // seq 1 before seq 0
  EXPECT_EQ(rob.occupancy(), 1u);
  const auto released = rob.on_complete(1, 0, 250);
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0].seq, 0u);
  EXPECT_EQ(released[1].seq, 1u);
  EXPECT_EQ(released[1].held_ns, 150);
  EXPECT_EQ(rob.occupancy(), 0u);
}

TEST(ReorderBuffer, DropUnblocksSuccessors) {
  ReorderBuffer rob;
  EXPECT_TRUE(rob.on_complete(1, 1, 10).empty());
  EXPECT_TRUE(rob.on_complete(1, 2, 20).empty());
  // seq 0 dropped at ingress: 1 and 2 must flow out.
  const auto released = rob.on_drop(1, 0, 30);
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0].seq, 1u);
  EXPECT_EQ(released[1].seq, 2u);
}

TEST(ReorderBuffer, DropReportedAheadOfExpected) {
  ReorderBuffer rob;
  // seq 1 dropped before seq 0 completes (possible: 0 queued, 1 rejected).
  EXPECT_TRUE(rob.on_drop(1, 1, 5).empty());
  auto released = rob.on_complete(1, 0, 10);
  ASSERT_EQ(released.size(), 1u);
  released = rob.on_complete(1, 2, 20);  // 1 is known-lost, so 2 releases
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].seq, 2u);
}

TEST(ReorderBuffer, FlowsAreIndependent) {
  ReorderBuffer rob;
  EXPECT_TRUE(rob.on_complete(1, 1, 0).empty());  // flow 1 blocked
  const auto released = rob.on_complete(2, 0, 0);  // flow 2 unaffected
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].gflow, 2u);
}

TEST(ReorderBuffer, TracksMaxOccupancy) {
  ReorderBuffer rob;
  for (std::uint32_t seq = 10; seq > 0; --seq) {
    rob.on_complete(3, seq, 0);
  }
  EXPECT_EQ(rob.max_occupancy(), 10u);
  const auto released = rob.on_complete(3, 0, 0);
  EXPECT_EQ(released.size(), 11u);
  EXPECT_EQ(rob.occupancy(), 0u);
  EXPECT_EQ(rob.max_occupancy(), 10u);  // high-water mark is sticky
}

TEST(ReorderBuffer, RandomizedPermutationRestoresOrder) {
  // Property: any interleaving of completions/drops yields an in-order,
  // complete, duplicate-free release stream.
  Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    ReorderBuffer rob;
    constexpr std::uint32_t kSeqs = 200;
    std::vector<std::uint32_t> order(kSeqs);
    for (std::uint32_t i = 0; i < kSeqs; ++i) order[i] = i;
    for (std::uint32_t i = kSeqs; i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    std::set<std::uint32_t> dropped;
    std::vector<std::uint32_t> released;
    for (std::uint32_t seq : order) {
      const bool drop = rng.chance(0.2);
      const auto out = drop ? rob.on_drop(9, seq, 0)
                            : rob.on_complete(9, seq, 0);
      if (drop) dropped.insert(seq);
      for (const auto& rel : out) released.push_back(rel.seq);
    }
    ASSERT_EQ(rob.occupancy(), 0u) << "round " << round;
    ASSERT_EQ(released.size(), kSeqs - dropped.size());
    std::uint32_t prev = 0;
    bool first = true;
    for (std::uint32_t seq : released) {
      if (!first) {
        ASSERT_GT(seq, prev);
      }
      ASSERT_FALSE(dropped.count(seq));
      prev = seq;
      first = false;
    }
  }
}

// -------------------------------------------------- Order restoration E2E ---

TEST(OrderRestoration, FcfsWithRobDeliversInOrder) {
  ScenarioConfig cfg;
  cfg.name = "rob";
  cfg.num_cores = 4;
  cfg.seconds = 0.01;
  cfg.seed = 5;
  cfg.restore_order = true;
  ServiceTraffic s;
  s.path = ServicePath::kIpForward;
  s.rate = HoltWintersParams{6.0, 0.0, 0.0, 10.0, 0.0};
  SyntheticTraceSpec spec;
  spec.num_flows = 200;
  spec.seed = 3;
  s.trace = std::make_shared<SyntheticTrace>(spec);
  cfg.services = {s};

  FcfsScheduler fcfs;
  const auto with_rob = run_scenario(cfg, fcfs);
  EXPECT_EQ(with_rob.out_of_order, 0u)
      << "the reorder buffer must restore perfect order";
  EXPECT_GT(with_rob.extra.at("rob_buffered_packets"), 0.0)
      << "FCFS spraying must actually exercise the buffer";
  EXPECT_GT(with_rob.extra.at("rob_max_occupancy"), 0.0);

  cfg.restore_order = false;
  FcfsScheduler plain;
  const auto without = run_scenario(cfg, plain);
  EXPECT_GT(without.out_of_order, 0u)
      << "same traffic without the buffer must reorder";
}

// ------------------------------------------------------------ Power gating ---

TEST(PowerGating, ParksIdleCoresUnderLightLoad) {
  ScenarioConfig cfg;
  cfg.name = "power";
  cfg.num_cores = 8;
  cfg.seconds = 0.02;
  cfg.seed = 9;
  ServiceTraffic s;
  s.path = ServicePath::kIpForward;
  s.rate = HoltWintersParams{1.0, 0.0, 0.0, 10.0, 0.0};  // ~6% of capacity
  SyntheticTraceSpec spec;
  spec.num_flows = 500;
  spec.seed = 4;
  spec.size_bytes = {64};
  spec.size_weights = {1.0};
  s.trace = std::make_shared<SyntheticTrace>(spec);
  cfg.services = {s};

  LapsConfig laps_cfg;
  laps_cfg.num_services = 1;
  laps_cfg.power_gating = true;
  laps_cfg.sleep_after = from_us(20);
  LapsScheduler sched(laps_cfg);
  const auto report = run_scenario(cfg, sched);

  EXPECT_GT(report.extra.at("sleep_events"), 0.0);
  EXPECT_GT(report.extra.at("parked_core_us"), 0.0);
  EXPECT_EQ(report.dropped, 0u) << "gating must not cost packets here";
  // At ~6% load, most of the 8 cores should sleep most of the time.
  const double total_core_us = 8.0 * 0.02 * 1e6;
  EXPECT_GT(report.extra.at("parked_core_us"), 0.3 * total_core_us);
}

TEST(PowerGating, WakesUnderLoadSurge) {
  // Light phase then a surge: parked cores must wake and absorb it.
  ScenarioConfig cfg;
  cfg.name = "surge";
  cfg.num_cores = 8;
  cfg.seconds = 0.02;
  cfg.seed = 10;
  ServiceTraffic s;
  s.path = ServicePath::kIpForward;
  // Strong upward trend: 0.5 -> ~12 Mpps across the run.
  s.rate = HoltWintersParams{0.5, 600.0, 0.0, 10.0, 0.0};
  SyntheticTraceSpec spec;
  spec.num_flows = 2000;
  spec.seed = 6;
  spec.size_bytes = {64};
  spec.size_weights = {1.0};
  s.trace = std::make_shared<SyntheticTrace>(spec);
  cfg.services = {s};

  LapsConfig laps_cfg;
  laps_cfg.num_services = 1;
  laps_cfg.power_gating = true;
  laps_cfg.sleep_after = from_us(20);
  LapsScheduler sched(laps_cfg);
  const auto report = run_scenario(cfg, sched);

  EXPECT_GT(report.extra.at("wake_events"), 0.0);
  EXPECT_LT(report.drop_ratio(), 0.05)
      << "waking must keep drops close to the non-gated baseline";
}

TEST(PowerGating, DisabledReportsNoParkedTime) {
  LapsConfig cfg;
  cfg.num_services = 1;
  LapsScheduler sched(cfg);
  sched.attach(4);
  EXPECT_EQ(sched.extra_stats().count("parked_core_us"), 0u);
}

}  // namespace
}  // namespace laps
