// Tests for the fault-injection subsystem (sim/fault.h): the --faults
// grammar, randomized plan generation, adversarial traffic synthesis, the
// engine's execution of core faults (flush, dead-route backstop, stall,
// slowdown, recovery), scheduler degradation (FCFS skip, StaticHash rehash,
// LAPS drain/remap with emergency grants), and the FaultProbe recovery
// metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "baselines/afs.h"
#include "baselines/fcfs.h"
#include "baselines/static_hash.h"
#include "core/laps.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "sim/probes.h"
#include "sim/report_json.h"
#include "sim/runner.h"
#include "trace/synthetic.h"

namespace laps {
namespace {

// ---------------------------------------------------------------- parsing ---

TEST(FaultPlanParse, RoundTripsCanonicalSpec) {
  const std::string spec =
      "burst@1ms+200us:rate=1.5,flows=8;stall:1@2ms+500us;"
      "crowd@4ms+1ms:rate=0.5,flows=100;slow:2x4@5ms;down:3@10ms;up:3@30ms";
  const FaultPlan plan = parse_fault_plan(spec);
  ASSERT_EQ(plan.events.size(), 6u);
  EXPECT_EQ(plan.to_spec(), spec);
  // parse(to_spec()) is exact.
  EXPECT_EQ(parse_fault_plan(plan.to_spec()).to_spec(), spec);
}

TEST(FaultPlanParse, SortsOutOfOrderComponents) {
  const FaultPlan plan = parse_fault_plan("up:0@2ms;down:0@1ms");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::kCoreDown);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kCoreUp);
  EXPECT_NO_THROW(plan.validate(4));
}

TEST(FaultPlanParse, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_fault_plan("gibberish"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("down:@1ms"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("down:1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("down:1@5xs"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("slow:1@1ms"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("stall:1@1ms"), std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("burst@1ms+1us:rate=1.0"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("burst@1ms+1us:flows=4"),
               std::invalid_argument);
  EXPECT_THROW(parse_fault_plan("crowd@1ms:rate=1.0,flows=4"),
               std::invalid_argument);
}

TEST(FaultPlanParse, ValidateChecksCoreRange) {
  const FaultPlan plan = parse_fault_plan("down:9@1ms");
  EXPECT_NO_THROW(plan.validate());  // core count unknown
  EXPECT_NO_THROW(plan.validate(16));
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
}

TEST(RandomFaultPlan, DeterministicValidAndNonEmpty) {
  RandomFaultParams params;
  params.num_cores = 8;
  const FaultPlan a = random_fault_plan(21, params);
  const FaultPlan b = random_fault_plan(21, params);
  EXPECT_EQ(a.to_spec(), b.to_spec());
  EXPECT_FALSE(a.empty());
  EXPECT_NO_THROW(a.validate(params.num_cores));
  // A different seed explores a different schedule.
  EXPECT_NE(a.to_spec(), random_fault_plan(22, params).to_spec());
}

// ----------------------------------------------------- FaultTrafficStream ---

class VecStream final : public ArrivalStream {
 public:
  VecStream(std::vector<GeneratedPacket> pkts, std::size_t flows)
      : pkts_(std::move(pkts)), flows_(flows) {}
  std::optional<GeneratedPacket> next() override {
    if (pos_ >= pkts_.size()) return std::nullopt;
    return pkts_[pos_++];
  }
  std::size_t total_flows() const override { return flows_; }

 private:
  std::vector<GeneratedPacket> pkts_;
  std::size_t flows_;
  std::size_t pos_ = 0;
};

GeneratedPacket base_packet(TimeNs t, std::uint32_t gflow) {
  GeneratedPacket pkt;
  pkt.time = t;
  pkt.gflow = gflow;
  pkt.record.flow_id = gflow;
  pkt.record.tuple.src_ip = 0x0A000000u + gflow;
  pkt.record.tuple.dst_ip = 0x0B000000u + gflow;
  pkt.record.tuple.src_port = 1000;
  pkt.record.tuple.dst_port = 80;
  pkt.record.tuple.protocol = 17;
  return pkt;
}

TEST(FaultTraffic, CollisionBurstSharesOneCrc16Bucket) {
  FaultPlan plan = parse_fault_plan("burst@10us+10us:rate=2.0,flows=5");
  plan.seed = 99;
  VecStream base({}, 0);
  FaultTrafficStream stream(base, plan);
  EXPECT_EQ(stream.injected_flows(), 5u);
  std::optional<std::uint16_t> crc;
  std::set<std::uint64_t> keys;
  TimeNs last = 0;
  std::size_t count = 0;
  while (auto pkt = stream.next()) {
    ++count;
    EXPECT_GE(pkt->time, from_us(10.0));
    EXPECT_LE(pkt->time, from_us(21.0));
    EXPECT_GE(pkt->time, last);
    last = pkt->time;
    EXPECT_EQ(pkt->gflow % 2, 1u) << "injected flows take odd gflow ids";
    if (!crc) crc = pkt->record.tuple.crc16();
    EXPECT_EQ(pkt->record.tuple.crc16(), *crc);
    keys.insert(pkt->record.tuple.key64());
  }
  EXPECT_EQ(count, stream.injected_packets());
  EXPECT_EQ(keys.size(), 5u) << "distinct tuples, one CRC16 bucket";
}

TEST(FaultTraffic, MergesByTimeAndSplitsIdSpaceByParity) {
  FaultPlan plan = parse_fault_plan("crowd@5us+5us:rate=1.0,flows=3");
  plan.seed = 7;
  VecStream base({base_packet(0, 0), base_packet(from_us(20.0), 1)}, 2);
  FaultTrafficStream stream(base, plan);
  TimeNs last = 0;
  std::vector<std::uint32_t> base_gflows;
  while (auto pkt = stream.next()) {
    EXPECT_GE(pkt->time, last);
    last = pkt->time;
    if (pkt->gflow % 2 == 0) base_gflows.push_back(pkt->gflow);
  }
  EXPECT_EQ(base_gflows, (std::vector<std::uint32_t>{0, 2}))
      << "base flows remap to even ids in arrival order";
}

TEST(FaultTraffic, CoreOnlyPlanPassesBaseThroughUntouched) {
  const FaultPlan plan = parse_fault_plan("down:1@5us;up:1@9us");
  VecStream base({base_packet(0, 4), base_packet(10, 5)}, 6);
  FaultTrafficStream stream(base, plan);
  EXPECT_EQ(stream.injected_packets(), 0u);
  EXPECT_EQ(stream.total_flows(), 6u);
  EXPECT_EQ(stream.next()->gflow, 4u) << "no parity remap without injection";
  EXPECT_EQ(stream.next()->gflow, 5u);
  EXPECT_FALSE(stream.next().has_value());
}

// --------------------------------------------------------- engine faults ---

class PinnedScheduler final : public Scheduler {
 public:
  explicit PinnedScheduler(CoreId core) : core_(core) {}
  void attach(std::size_t) override {}
  CoreId schedule(const SimPacket&, const NpuView&) override { return core_; }
  std::string name() const override { return "Pinned"; }

 private:
  CoreId core_;
};

/// Records when the last packet actually departed — SimReport::sim_time is
/// the generator horizon, which post-horizon drain (and stalls) exceed.
class DepartureClock final : public SimProbe {
 public:
  void on_departure(TimeNs now, const SimPacket&, CoreId,
                    std::uint32_t) override {
    last = now;
  }
  TimeNs last = 0;
};

struct PinnedRun {
  SimReport report;
  TimeNs last_departure = 0;
};

/// Runs `pkts` through a 2-core engine with `spec` as the fault plan.
PinnedRun run_pinned(const std::vector<GeneratedPacket>& pkts,
                     const std::string& spec, CoreId core = 0) {
  const FaultPlan plan =
      spec.empty() ? FaultPlan{} : parse_fault_plan(spec);
  VecStream stream(pkts, 64);
  PinnedScheduler sched(core);
  SimEngineConfig cfg;
  cfg.num_cores = 2;
  cfg.queue_capacity = 32;
  if (!plan.empty()) cfg.faults = &plan;
  ReportProbe probe;
  DepartureClock clock;
  SimEngine engine(cfg, sched, ProbeSet{&probe, &clock});
  engine.run(stream, "fault_test");
  return {probe.take_report(), clock.last};
}

TEST(EngineFault, CoreDownFlushesQueueAndBackstopsDeadRouting) {
  std::vector<GeneratedPacket> pkts;
  for (std::uint32_t i = 0; i < 64; ++i) {
    pkts.push_back(base_packet(i * 10, i % 8));  // burst: queue builds
  }
  for (std::uint32_t i = 0; i < 10; ++i) {  // arrives while core 0 is dead
    pkts.push_back(base_packet(from_us(50.0) + i * 10, i % 8));
  }
  const SimReport report = run_pinned(pkts, "down:0@5us").report;
  EXPECT_EQ(report.offered, 74u);
  EXPECT_EQ(report.offered, report.delivered + report.dropped)
      << "conservation must survive a flush";
  EXPECT_EQ(report.in_flight_at_end, 0u);
  ASSERT_TRUE(report.extra.count("fault_flush_drops"));
  EXPECT_GT(report.extra.at("fault_flush_drops"), 0.0);
  EXPECT_EQ(report.extra.at("fault_dead_route_drops"), 10.0)
      << "a pinned scheduler keeps routing to the dead core; the engine "
         "must drop, not enqueue";
  EXPECT_EQ(report.extra.at("fault_cores_down_at_end"), 1.0);
}

TEST(EngineFault, CoreDownIsIdempotentAndUpRestoresService) {
  std::vector<GeneratedPacket> pkts;
  for (std::uint32_t i = 0; i < 20; ++i) {
    pkts.push_back(base_packet(from_us(100.0) + i * 10, i % 4));
  }
  const SimReport report =
      run_pinned(pkts, "down:0@5us;down:0@6us;up:0@50us").report;
  EXPECT_EQ(report.delivered, 20u)
      << "everything arriving after recovery is served";
  EXPECT_EQ(report.extra.at("fault_cores_down_at_end"), 0.0);
  EXPECT_EQ(report.extra.at("fault_events"), 3.0);
}

TEST(EngineFault, StallDefersServiceWithoutDroppingPackets) {
  const std::vector<GeneratedPacket> pkts = {base_packet(0, 0)};
  const PinnedRun stalled = run_pinned(pkts, "stall:0@0ns+50us");
  const PinnedRun plain = run_pinned(pkts, "");
  EXPECT_EQ(stalled.report.delivered, 1u);
  EXPECT_GE(stalled.last_departure, from_us(50.0))
      << "service cannot start before the stall expires";
  EXPECT_LT(plain.last_departure, from_us(50.0));
}

TEST(EngineFault, SlowdownStretchesServiceTime) {
  const std::vector<GeneratedPacket> pkts = {base_packet(0, 0),
                                             base_packet(1, 1)};
  const PinnedRun slowed = run_pinned(pkts, "slow:0x4@0ns");
  const PinnedRun plain = run_pinned(pkts, "");
  EXPECT_EQ(slowed.report.delivered, 2u);
  EXPECT_GT(slowed.last_departure, plain.last_departure * 2)
      << "a 4x slowdown must dominate the run length";
}

TEST(EngineFault, FaultProbeRecordsOutageAndReintegration) {
  std::vector<GeneratedPacket> pkts;
  for (std::uint32_t i = 0; i < 8; ++i) {
    pkts.push_back(base_packet(i * 10, i));  // before the outage
  }
  for (std::uint32_t i = 0; i < 8; ++i) {
    pkts.push_back(base_packet(from_us(100.0) + i * 10, i));  // after up
  }
  const FaultPlan plan = parse_fault_plan("down:0@10us;up:0@60us");
  VecStream stream(pkts, 8);
  PinnedScheduler sched(0);
  SimEngineConfig cfg;
  cfg.num_cores = 2;
  cfg.queue_capacity = 32;
  cfg.faults = &plan;
  ReportProbe report;
  FaultProbe fault_probe;
  ProbeSet probes;
  probes.add(&report);
  probes.add(&fault_probe);
  SimEngine engine(cfg, sched, probes);
  engine.run(stream, "fault_test");

  ASSERT_EQ(fault_probe.timeline().size(), 2u);
  EXPECT_EQ(fault_probe.timeline()[0].event.kind, FaultKind::kCoreDown);
  ASSERT_EQ(fault_probe.recoveries().size(), 1u);
  const auto& rec = fault_probe.recoveries()[0];
  EXPECT_EQ(rec.core, 0);
  EXPECT_EQ(rec.outage_ns(), from_us(50.0));
  EXPECT_EQ(rec.reintegrate_ns(), from_us(40.0))
      << "first dispatch lands with the 100us arrival wave";
  const std::string json = fault_probe.to_json();
  EXPECT_NE(json.find("fault_probe"), std::string::npos);
}

// ------------------------------------------------- scheduler degradation ---

class FakeView final : public NpuView {
 public:
  explicit FakeView(std::size_t n) : cores_(n) {
    for (auto& c : cores_) c.idle_since = 0;
  }
  TimeNs now() const override { return now_; }
  std::span<const CoreView> cores() const override {
    return {cores_.data(), cores_.size()};
  }
  std::uint32_t queue_capacity() const override { return 32; }

  TimeNs now_ = 0;
  std::vector<CoreView> cores_;
};

SimPacket make_packet(std::uint32_t flow, ServicePath service) {
  SimPacket pkt;
  pkt.tuple.src_ip = 0x0A000000u + flow;
  pkt.tuple.dst_ip = static_cast<std::uint32_t>(mix64(flow) >> 32) | 1u;
  pkt.tuple.src_port = static_cast<std::uint16_t>(1024 + flow % 60000);
  pkt.tuple.dst_port = 80;
  pkt.tuple.protocol = 6;
  pkt.gflow = flow;
  pkt.service = service;
  return pkt;
}

TEST(FcfsFault, SkipsDeadCoresAndRecovers) {
  FcfsScheduler fcfs;
  fcfs.attach(4);
  FakeView view(4);
  fcfs.notify_core_down(2, view);
  for (std::uint32_t f = 0; f < 64; ++f) {
    EXPECT_NE(fcfs.schedule(make_packet(f, ServicePath::kIpForward), view),
              2u);
  }
  fcfs.notify_core_up(2, view);
  // Make core 2 the unique least-loaded target.
  for (CoreId c = 0; c < 4; ++c) view.cores_[c].queue_len = c == 2 ? 0 : 9;
  EXPECT_EQ(fcfs.schedule(make_packet(1, ServicePath::kIpForward), view), 2u);
}

TEST(StaticHashFault, RehashesAroundDeadCoreAndRestoresExactly) {
  StaticHashScheduler hash;
  hash.attach(4);
  FakeView view(4);
  std::vector<CoreId> before;
  for (std::uint32_t f = 0; f < 256; ++f) {
    before.push_back(
        hash.schedule(make_packet(f, ServicePath::kIpForward), view));
  }
  hash.notify_core_down(1, view);
  for (std::uint32_t f = 0; f < 256; ++f) {
    EXPECT_NE(hash.schedule(make_packet(f, ServicePath::kIpForward), view),
              1u);
  }
  hash.notify_core_up(1, view);
  for (std::uint32_t f = 0; f < 256; ++f) {
    EXPECT_EQ(hash.schedule(make_packet(f, ServicePath::kIpForward), view),
              before[f])
        << "recovery restores the exact fault-free mapping";
  }
}

TEST(AfsFault, NeverShiftsBundlesOntoDeadCore) {
  AfsScheduler afs;
  afs.attach(4);
  FakeView view(4);
  afs.notify_core_down(3, view);
  // Overload every live core so the shift heuristic fires constantly; the
  // dead core's empty view must never attract a bundle.
  for (CoreId c = 0; c < 4; ++c) view.cores_[c].queue_len = 30;
  view.cores_[3].queue_len = 0;
  for (std::uint32_t f = 0; f < 512; ++f) {
    EXPECT_NE(afs.schedule(make_packet(f, ServicePath::kIpForward), view),
              3u);
  }
}

LapsConfig laps_config(std::size_t services) {
  LapsConfig cfg;
  cfg.num_services = services;
  cfg.high_thresh = 24;
  cfg.idle_th = from_us(100);
  cfg.afd.afc_entries = 4;
  cfg.afd.annex_entries = 32;
  cfg.afd.promote_threshold = 2;
  return cfg;
}

TEST(LapsFault, DrainsAndRemapsBucketsOffDeadCore) {
  LapsScheduler laps(laps_config(2));
  laps.attach(8);  // service 0: cores 0-3, service 1: cores 4-7
  FakeView view(8);
  // Touch service 0 so its tables exist, then kill one of its cores.
  for (std::uint32_t f = 0; f < 64; ++f) {
    laps.schedule(make_packet(f, ServicePath::kVpnOut), view);
  }
  laps.notify_core_down(1, view);
  EXPECT_FALSE(laps.map_table(0).contains(1))
      << "every bucket must drain off the dead core";
  for (std::uint32_t f = 0; f < 256; ++f) {
    const CoreId c = laps.schedule(make_packet(f, ServicePath::kVpnOut), view);
    EXPECT_NE(c, 1u);
    EXPECT_LT(c, 4u) << "replacement stays within the owning service while "
                        "it still has online cores";
  }
  const auto stats = laps.extra_stats();
  ASSERT_TRUE(stats.count("laps_cores_down_events"));
  EXPECT_EQ(stats.at("laps_cores_down_events"), 1.0);
}

TEST(LapsFault, RecoveryReaddsCoreAndFaultFreeStatsStayClean) {
  LapsScheduler laps(laps_config(2));
  laps.attach(8);
  EXPECT_FALSE(laps.extra_stats().count("laps_cores_down_events"))
      << "fault keys must not appear in fault-free runs";
  FakeView view(8);
  laps.schedule(make_packet(3, ServicePath::kVpnOut), view);
  laps.notify_core_down(0, view);
  laps.notify_core_up(0, view);
  EXPECT_TRUE(laps.map_table(0).contains(0))
      << "recovered core rejoins its service's map table";
  const auto stats = laps.extra_stats();
  EXPECT_EQ(stats.at("laps_cores_up_events"), 1.0);
}

TEST(LapsFault, EmergencyGrantKeepsServiceAliveWhenAllItsCoresDie) {
  LapsScheduler laps(laps_config(2));
  laps.attach(8);
  FakeView view(8);
  laps.schedule(make_packet(9, ServicePath::kVpnOut), view);  // service 0
  std::set<CoreId> dead;
  for (CoreId c = 0; c < 4; ++c) {
    laps.notify_core_down(c, view);
    dead.insert(c);
    for (std::uint32_t f = 0; f < 64; ++f) {
      const CoreId target =
          laps.schedule(make_packet(f, ServicePath::kVpnOut), view);
      EXPECT_FALSE(dead.count(target))
          << "after down(" << c << ") no packet may route to a dead core";
    }
  }
  // All four original cores are dead: service 0 must now own at least one
  // core taken from service 1 via the emergency grant path.
  EXPECT_GE(laps.allocator().online_of(0), 1u);
  EXPECT_GE(laps.allocator().cores_of(0).size(), 5u);
}

TEST(LapsFault, PinsToDeadCoreAreScrubbedOnFailure) {
  LapsScheduler laps(laps_config(1));
  laps.attach(4);
  FakeView view(4);
  const SimPacket pkt = make_packet(1, ServicePath::kIpForward);
  const CoreId home = laps.schedule(pkt, view);
  for (int i = 0; i < 10; ++i) laps.schedule(pkt, view);  // goes aggressive
  view.cores_[home].queue_len = 30;
  const CoreId pin = laps.schedule(pkt, view);  // migrates: pinned to `pin`
  ASSERT_NE(pin, home);
  view.cores_[home].queue_len = 0;
  ASSERT_EQ(laps.schedule(pkt, view), pin);
  laps.notify_core_down(pin, view);
  EXPECT_FALSE(laps.migration_table(0).lookup(pkt.flow_key()).has_value())
      << "core failure must scrub every pin to the dead core";
  const CoreId after = laps.schedule(pkt, view);
  EXPECT_NE(after, pin) << "a pin to a dead core must not be followed";
}

// ----------------------------------------------- end-to-end via scenarios ---

ScenarioConfig fault_scenario(std::uint64_t seed, const std::string& spec) {
  ScenarioConfig cfg;
  cfg.name = "fault_scenario";
  cfg.num_cores = 4;
  cfg.queue_capacity = 16;
  cfg.seconds = 0.002;
  cfg.seed = seed;
  SyntheticTraceSpec trace;
  trace.name = "fault_e2e";
  trace.num_flows = 2048;
  trace.seed = seed * 17 + 3;
  ServiceTraffic s;
  s.path = ServicePath::kIpForward;
  s.rate = HoltWintersParams{8.0, 0.0, 0.0, 10.0, 0.0};
  s.trace = std::make_shared<SyntheticTrace>(trace);
  cfg.services = {s};
  if (!spec.empty()) {
    cfg.faults = std::make_shared<const FaultPlan>(parse_fault_plan(spec));
  }
  return cfg;
}

TEST(FaultScenario, LapsSurvivesOutageWithConservationAndNoDeadRouting) {
  const ScenarioConfig cfg =
      fault_scenario(11, "down:1@400us;up:1@1200us;slow:0x2@800us");
  LapsScheduler laps(laps_config(1));
  const SimReport report = run_scenario(cfg, laps);
  EXPECT_EQ(report.offered, report.delivered + report.dropped);
  EXPECT_EQ(report.in_flight_at_end, 0u);
  EXPECT_EQ(report.extra.at("fault_dead_route_drops"), 0.0)
      << "LAPS drain/remap must keep every packet off the dead core";
  EXPECT_EQ(report.extra.at("laps_cores_down_events"), 1.0);
  EXPECT_EQ(report.extra.at("laps_cores_up_events"), 1.0);
  EXPECT_EQ(report.extra.at("fault_cores_down_at_end"), 0.0);
}

TEST(FaultScenario, IdenticalSeedsReplayBitExactly) {
  const std::string spec =
      "down:2@300us;up:2@900us;burst@500us+100us:rate=1.0,flows=6";
  auto s1 = std::make_unique<FcfsScheduler>();
  auto s2 = std::make_unique<FcfsScheduler>();
  const std::string a =
      report_to_json(run_scenario(fault_scenario(5, spec), *s1));
  const std::string b =
      report_to_json(run_scenario(fault_scenario(5, spec), *s2));
  EXPECT_EQ(a, b);
}

TEST(FaultScenario, ReferenceKernelRejectsFaultPlans) {
  const ScenarioConfig cfg = fault_scenario(5, "down:0@100us");
  FcfsScheduler fcfs;
  EXPECT_THROW(run_scenario_reference(cfg, fcfs), std::invalid_argument);
}

// ------------------------------------------------ wheel-mode chaos slice ---

// A 20-schedule slice of the chaos_soak invariant grid run with the
// TimingWheel completion queue: randomized-but-seeded fault plans
// (down/up/slow/stall plus traffic bursts) across rotating schedulers, with
// the soak harness's core invariants asserted per schedule. The full grid
// lives in bench/chaos_soak (CI runs it sanitized with --event-queue=wheel);
// this slice keeps the wheel+faults interaction — lazily cancelled
// completions, stall wake-ups, mid-outage cascades — inside plain ctest.
TEST(FaultScenario, WheelSurvivesRandomChaosScheduleSlice) {
  constexpr int kSchedules = 20;
  for (int i = 0; i < kSchedules; ++i) {
    const std::uint64_t seed = 9000 + static_cast<std::uint64_t>(i);
    ScenarioConfig cfg = fault_scenario(seed, "");
    cfg.name = "wheel_chaos" + std::to_string(i);
    cfg.event_queue = EventQueueKind::kWheel;

    RandomFaultParams params;
    params.horizon = from_us(cfg.seconds * 1e6);
    params.num_cores = cfg.num_cores;
    cfg.faults =
        std::make_shared<const FaultPlan>(random_fault_plan(seed, params));

    std::unique_ptr<Scheduler> scheduler;
    switch (i % 3) {
      case 0: scheduler = std::make_unique<FcfsScheduler>(); break;
      case 1: scheduler = std::make_unique<StaticHashScheduler>(); break;
      default: scheduler = std::make_unique<LapsScheduler>(laps_config(1));
    }
    const SimReport report = run_scenario(cfg, *scheduler);
    const std::string ctx =
        cfg.name + " spec=" + cfg.faults->to_spec();

    // Conservation: core failures flush and dead-route as *drops*, never
    // as lost accounting, and the drain leaves nothing in flight.
    EXPECT_EQ(report.offered, report.delivered + report.dropped) << ctx;
    EXPECT_EQ(report.in_flight_at_end, 0u) << ctx;
    // Graceful degradation: every scheduler reroutes around dead cores, so
    // the engine's dead-core backstop never fires.
    EXPECT_EQ(report.extra.at("fault_dead_route_drops"), 0.0) << ctx;
    // The schedule actually ran (the slice must not silently no-op).
    EXPECT_GT(report.extra.at("fault_events"), 0.0) << ctx;
    EXPECT_GT(report.offered, 0u) << ctx;
  }
}

}  // namespace
}  // namespace laps
