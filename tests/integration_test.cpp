// End-to-end integration tests: full simulations on the paper's scenarios,
// asserting the *shapes* the evaluation section reports (who wins, and
// roughly by how much). These are the same harnesses the bench binaries
// run, at shorter horizons.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/afs.h"
#include "baselines/fcfs.h"
#include "baselines/oracle_topk.h"
#include "baselines/static_hash.h"
#include "core/laps.h"
#include "sim/scenarios.h"

namespace laps {
namespace {

ScenarioOptions quick_options() {
  ScenarioOptions opt;
  opt.seconds = 0.05;
  opt.seed = 2013;
  return opt;
}

LapsConfig laps_multi_config() {
  LapsConfig cfg;
  cfg.num_services = 4;
  return cfg;
}

LapsConfig laps_single_config(std::size_t afc_entries = 16) {
  LapsConfig cfg;
  cfg.num_services = 1;
  cfg.afd.afc_entries = afc_entries;
  return cfg;
}

// ------------------------------------------------ Scenario construction ---

TEST(Scenarios, AllEightIdsBuild) {
  for (const std::string& id : paper_scenario_ids()) {
    const auto cfg = make_paper_scenario(id, quick_options());
    EXPECT_EQ(cfg.name, id);
    EXPECT_EQ(cfg.services.size(), kNumServices);
    EXPECT_EQ(cfg.num_cores, 16u);
  }
  EXPECT_THROW(make_paper_scenario("T9", quick_options()),
               std::invalid_argument);
  EXPECT_THROW(make_paper_scenario("bogus", quick_options()),
               std::invalid_argument);
}

TEST(Scenarios, Set1IsUnderloadSet2IsOverload) {
  const auto opt = quick_options();
  const auto t1 = make_paper_scenario("T1", opt);
  const auto t5 = make_paper_scenario("T5", opt);
  const double l1 =
      mean_offered_load(t1.services, t1.delay, t1.num_cores, opt.seconds);
  const double l5 =
      mean_offered_load(t5.services, t5.delay, t5.num_cores, opt.seconds);
  EXPECT_NEAR(l1, opt.load_set1, 0.01);
  EXPECT_NEAR(l5, opt.load_set2, 0.01);
}

TEST(Scenarios, Table5GroupsMatchPaper) {
  EXPECT_EQ(table5_group(1),
            (std::vector<std::string>{"caida1", "caida2", "caida3", "caida4"}));
  EXPECT_EQ(table5_group(2),
            (std::vector<std::string>{"caida5", "caida6", "caida2", "caida3"}));
  EXPECT_THROW(table5_group(5), std::invalid_argument);
}

// ------------------------------------------------------ Fig. 7 behaviour ---

struct Fig7Runs {
  SimReport fcfs;
  SimReport afs;
  SimReport laps;
};

Fig7Runs run_fig7(const std::string& id) {
  const auto cfg = make_paper_scenario(id, quick_options());
  Fig7Runs out;
  {
    FcfsScheduler sched;
    out.fcfs = run_scenario(cfg, sched);
  }
  {
    AfsScheduler sched;
    out.afs = run_scenario(cfg, sched);
  }
  {
    LapsScheduler sched(laps_multi_config());
    out.laps = run_scenario(cfg, sched);
  }
  return out;
}

TEST(Fig7Shape, UnderloadLapsPreservesICacheLocality) {
  const auto runs = run_fig7("T1");
  // Paper Fig. 7b: FCFS/AFS send mixed services everywhere (~60% cold),
  // LAPS partitions cores per service (near zero cold under-load).
  EXPECT_GT(runs.fcfs.cold_cache_ratio(), 0.35);
  EXPECT_GT(runs.afs.cold_cache_ratio(), 0.35);
  EXPECT_LT(runs.laps.cold_cache_ratio(), 0.05);
}

TEST(Fig7Shape, UnderloadLapsDropsFewerPackets) {
  const auto runs = run_fig7("T1");
  // Paper Fig. 7a: FCFS/AFS "drop packets even in under-load conditions"
  // because of cold-cache penalties; LAPS should drop (almost) none. At
  // this short 50 ms horizon LAPS still shows its start-up transient (the
  // equal initial core split takes ~10-20 ms of grants to match the skewed
  // service demands), so the bound is loose here; the Fig. 7 bench at
  // longer horizons shows the ratio collapsing toward zero.
  EXPECT_LT(runs.laps.drop_ratio(), 0.08);
  EXPECT_LT(runs.laps.drop_ratio(), runs.fcfs.drop_ratio() + 1e-12);
  EXPECT_LT(runs.laps.drop_ratio(), runs.afs.drop_ratio() + 1e-12);
}

TEST(Fig7Shape, LapsMinimizesOutOfOrder) {
  const auto runs = run_fig7("T5");  // overload: reordering pressure is real
  // Paper Fig. 7c: FCFS is far worse than either hash-based scheme (it
  // sprays flows across cores), and LAPS reordering stays tiny. The
  // LAPS-vs-AFS gap needs the steady state — at this 50 ms horizon LAPS is
  // still paying its core-allocation ramp — so the full ordering is
  // asserted by the Fig. 7 bench at longer horizons, not here.
  EXPECT_GT(runs.fcfs.ooo_ratio(), 50 * runs.laps.ooo_ratio());
  EXPECT_GT(runs.fcfs.ooo_ratio(), 50 * runs.afs.ooo_ratio());
  EXPECT_LT(runs.laps.ooo_ratio(), 0.005);
}

TEST(Fig7Shape, OverloadEveryoneDropsButLapsLeast) {
  const auto runs = run_fig7("T5");
  EXPECT_GT(runs.laps.dropped, 0u) << "Set 2 exceeds 16-core capacity";
  EXPECT_LE(runs.laps.drop_ratio(), runs.fcfs.drop_ratio());
  EXPECT_LE(runs.laps.drop_ratio(), runs.afs.drop_ratio());
}

TEST(Fig7Shape, AucklandScenarioSameOrdering) {
  const auto runs = run_fig7("T3");  // Set 1 x Auckland traces
  EXPECT_LT(runs.laps.cold_cache_ratio(), runs.afs.cold_cache_ratio());
  EXPECT_LE(runs.laps.drop_ratio(), runs.afs.drop_ratio() + 1e-12);
}

TEST(Fig7Shape, ConservationHoldsForAllSchedulers) {
  const auto runs = run_fig7("T6");
  for (const SimReport* r : {&runs.fcfs, &runs.afs, &runs.laps}) {
    EXPECT_EQ(r->offered, r->delivered + r->dropped) << r->scheduler;
  }
}

TEST(Fig7Shape, IdenticalTrafficAcrossSchedulers) {
  // The comparison is only fair if all three schedulers saw the same
  // packet stream (same seed, traces reset between runs).
  const auto runs = run_fig7("T2");
  EXPECT_EQ(runs.fcfs.offered, runs.afs.offered);
  EXPECT_EQ(runs.afs.offered, runs.laps.offered);
  EXPECT_EQ(runs.fcfs.offered_by_service, runs.laps.offered_by_service);
}

TEST(Fig7Shape, LapsDeterministicAcrossRuns) {
  const auto cfg = make_paper_scenario("T1", quick_options());
  LapsScheduler a(laps_multi_config()), b(laps_multi_config());
  const auto ra = run_scenario(cfg, a);
  const auto rb = run_scenario(cfg, b);
  EXPECT_EQ(ra.offered, rb.offered);
  EXPECT_EQ(ra.dropped, rb.dropped);
  EXPECT_EQ(ra.out_of_order, rb.out_of_order);
  EXPECT_EQ(ra.flow_migrations, rb.flow_migrations);
  EXPECT_EQ(ra.extra.at("core_transfers"), rb.extra.at("core_transfers"));
}

// ------------------------------------------------------ Fig. 9 behaviour ---

struct Fig9Runs {
  SimReport no_migration;
  SimReport afs;
  SimReport laps16;
};

Fig9Runs run_fig9(const std::string& trace) {
  ScenarioOptions opt;
  opt.seconds = 0.02;
  opt.seed = 99;
  const auto cfg = make_single_service_scenario(trace, opt, 1.05);
  Fig9Runs out;
  {
    StaticHashScheduler sched;
    out.no_migration = run_scenario(cfg, sched);
  }
  {
    AfsScheduler sched;
    out.afs = run_scenario(cfg, sched);
  }
  {
    LapsScheduler sched(laps_single_config(16));
    out.laps16 = run_scenario(cfg, sched);
  }
  return out;
}

TEST(Fig9Shape, NoMigrationDropsMost) {
  const auto runs = run_fig9("caida1");
  // Paper Fig. 9a: "a lot more packets are lost if we do not migrate any
  // flows".
  EXPECT_GT(runs.no_migration.drop_ratio(), runs.afs.drop_ratio());
  EXPECT_GT(runs.no_migration.drop_ratio(), runs.laps16.drop_ratio());
}

TEST(Fig9Shape, LapsCutsMigrationsVersusAfs) {
  const auto runs = run_fig9("caida1");
  // Paper Fig. 9c: ~80% fewer flow migrations when only top flows move.
  EXPECT_LT(static_cast<double>(runs.laps16.flow_migrations),
            0.5 * static_cast<double>(runs.afs.flow_migrations));
}

TEST(Fig9Shape, LapsCutsOutOfOrderVersusAfs) {
  const auto runs = run_fig9("caida1");
  // Paper Fig. 9b: ~85% fewer out-of-order packets.
  EXPECT_LT(static_cast<double>(runs.laps16.out_of_order),
            0.5 * static_cast<double>(runs.afs.out_of_order));
}

TEST(Fig9Shape, LapsThroughputCompetitiveWithAfs) {
  const auto runs = run_fig9("auck1");
  // Paper Fig. 9a: similar or better drops than AFS when the top flows are
  // migrated. Allow a modest tolerance band.
  EXPECT_LT(runs.laps16.drop_ratio(), runs.afs.drop_ratio() + 0.03);
}

TEST(Fig9Shape, MoreAfcEntriesMigrateMoreFlows) {
  ScenarioOptions opt;
  opt.seconds = 0.02;
  opt.seed = 7;
  const auto cfg = make_single_service_scenario("caida2", opt, 1.05);
  double migs_small = 0, migs_big = 0;
  {
    LapsScheduler sched(laps_single_config(4));
    migs_small = static_cast<double>(run_scenario(cfg, sched).flow_migrations);
  }
  {
    LapsScheduler sched(laps_single_config(16));
    migs_big = static_cast<double>(run_scenario(cfg, sched).flow_migrations);
  }
  EXPECT_LE(migs_small, migs_big * 1.5 + 100)
      << "a smaller AFC cannot migrate more flows by much";
}

TEST(Fig9Shape, OracleBehavesLikeLaps) {
  ScenarioOptions opt;
  opt.seconds = 0.02;
  opt.seed = 31;
  const auto cfg = make_single_service_scenario("auck2", opt, 1.05);
  SimReport oracle_report, afs_report;
  {
    OracleTopKScheduler sched(16);
    oracle_report = run_scenario(cfg, sched);
  }
  {
    AfsScheduler sched;
    afs_report = run_scenario(cfg, sched);
  }
  // The oracle (exact per-flow stats) migrates far fewer flows than AFS —
  // the premise LAPS approximates.
  EXPECT_LT(static_cast<double>(oracle_report.flow_migrations),
            0.5 * static_cast<double>(afs_report.flow_migrations));
}

// ------------------------------------------------- LAPS internals in vivo ---

TEST(LapsInVivo, CoreReallocationsHappenUnderShiftingLoad) {
  // Overload scenario: services outgrow their initial 4-core split, so the
  // allocator must transfer cores.
  const auto cfg = make_paper_scenario("T5", quick_options());
  LapsScheduler sched(laps_multi_config());
  const auto report = run_scenario(cfg, sched);
  EXPECT_GT(report.extra.at("core_requests"), 0.0);
  EXPECT_GT(report.extra.at("core_transfers"), 0.0);
}

TEST(LapsInVivo, AfdPromotesUnderRealTraffic) {
  const auto cfg = make_paper_scenario("T1", quick_options());
  LapsScheduler sched(laps_multi_config());
  const auto report = run_scenario(cfg, sched);
  EXPECT_GT(report.extra.at("afd_promotions"), 0.0);
  EXPECT_GT(report.extra.at("afd_afc_hits"), 0.0);
}

}  // namespace
}  // namespace laps
