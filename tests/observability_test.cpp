// Tests for the flow-audit observability subsystem: FlowAuditTable /
// FlowAuditProbe (exact per-flow attribution, deferred-fold event log),
// AfdAccuracyProbe (online Fig. 8 scoring), FlightRecorderProbe (anomaly-
// triggered postmortem ring), plus JSON-validity pinning for every probe
// artifact (including hostile scenario names through ChromeTraceProbe) and
// TimeSeriesProbe window edge cases.
//
// The load-bearing assertion is GoldenGridTotals: on the same grid the
// golden determinism suite uses, the audit table's per-flow columns must
// sum *exactly* to the ReportProbe aggregates — the audit is a
// decomposition of the report, not a parallel approximation.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <vector>

#include "baselines/afs.h"
#include "baselines/fcfs.h"
#include "baselines/static_hash.h"
#include "core/laps.h"
#include "sim/afd_accuracy.h"
#include "sim/engine.h"
#include "sim/flight_recorder.h"
#include "sim/flow_audit.h"
#include "sim/probes.h"
#include "sim/runner.h"
#include "trace/synthetic.h"

namespace laps {
namespace {

// ------------------------------------------------- minimal JSON validator ---

// A strict recursive-descent JSON checker (no values retained). Probe
// artifacts promise to be valid JSON whatever run labels contain; this
// validator is how the tests pin that promise without external parsers.
class JsonChecker {
 public:
  static bool valid(const std::string& text) {
    JsonChecker c(text);
    c.skip_ws();
    if (!c.value()) return false;
    c.skip_ws();
    return c.pos_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return false;
    }
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(JsonChecker, SelfTest) {
  EXPECT_TRUE(JsonChecker::valid(R"({"a":[1,-2.5e3,true,null,"x\n\"y\""]})"));
  EXPECT_FALSE(JsonChecker::valid(R"({"a":1)"));
  EXPECT_FALSE(JsonChecker::valid("{\"a\":\"raw\nnewline\"}"));
  EXPECT_FALSE(JsonChecker::valid(R"({"a":"bad\q"})"));
  EXPECT_FALSE(JsonChecker::valid(R"([1,2,]trailing)"));
}

// ------------------------------------------------------------ test helpers ---

ScenarioConfig golden_scenario(const std::string& trace, std::uint64_t seed,
                               double load_mpps, bool restore_order) {
  ScenarioConfig cfg;
  cfg.name = "golden." + trace;
  cfg.num_cores = 4;
  cfg.queue_capacity = 8;
  cfg.seconds = 0.002;
  cfg.seed = seed;
  cfg.restore_order = restore_order;
  SyntheticTraceSpec spec;
  spec.name = trace;
  spec.num_flows = 4096;
  spec.seed = seed * 31 + 7;
  if (trace == "churny") {
    spec.churn_per_packet = 0.01;
    spec.zipf_alpha = 1.2;
  }
  ServiceTraffic s;
  s.path = ServicePath::kIpForward;
  s.rate = HoltWintersParams{load_mpps, 0.0, 0.0, 10.0, 0.0};
  s.trace = std::make_shared<SyntheticTrace>(spec);
  cfg.services = {s};
  return cfg;
}

std::unique_ptr<Scheduler> make_sched(const std::string& name) {
  if (name == "FCFS") return std::make_unique<FcfsScheduler>();
  if (name == "StaticHash") return std::make_unique<StaticHashScheduler>();
  if (name == "AFS") return std::make_unique<AfsScheduler>();
  LapsConfig cfg;
  cfg.num_services = 1;
  return std::make_unique<LapsScheduler>(cfg);
}

SimPacket packet_for(std::uint32_t gflow, TimeNs arrival) {
  SimPacket pkt;
  pkt.arrival = arrival;
  pkt.gflow = gflow;
  pkt.tuple.src_ip = 0x0A000000u + gflow;
  pkt.tuple.dst_ip = 0xC0A80001u;
  pkt.tuple.src_port = static_cast<std::uint16_t>(1000 + gflow % 50'000);
  pkt.tuple.dst_port = 80;
  pkt.tuple.protocol = 6;
  return pkt;
}

// ----------------------------------------------------------- FlowAuditTable ---

TEST(FlowAuditTable, InsertFindAndMiss) {
  FlowAuditTable t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.find(7), nullptr);
  t.find_or_insert(7).packets = 3;
  t.find_or_insert(9).packets = 5;
  EXPECT_EQ(t.size(), 2u);
  ASSERT_NE(t.find(7), nullptr);
  EXPECT_EQ(t.find(7)->packets, 3u);
  EXPECT_EQ(t.find(9)->packets, 5u);
  EXPECT_EQ(t.find(8), nullptr);
  // Re-finding must not duplicate.
  ++t.find_or_insert(7).packets;
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.find(7)->packets, 4u);
}

TEST(FlowAuditTable, GrowthPreservesEveryRecord) {
  FlowAuditTable t;
  // Well past the initial 1024 slots so the table rehashes several times.
  constexpr std::uint64_t kFlows = 3000;
  for (std::uint64_t k = 1; k <= kFlows; ++k) {
    FlowAuditTable::Entry& e = t.find_or_insert(k * 0x9E3779B9ULL);
    e.packets = k;
    e.out_of_order = static_cast<std::uint32_t>(k % 7);
  }
  EXPECT_EQ(t.size(), kFlows);
  for (std::uint64_t k = 1; k <= kFlows; ++k) {
    const FlowAuditTable::Entry* e = t.find(k * 0x9E3779B9ULL);
    ASSERT_NE(e, nullptr) << k;
    EXPECT_EQ(e->packets, k);
    EXPECT_EQ(e->out_of_order, k % 7);
  }
  EXPECT_EQ(t.entries().size(), kFlows);
}

TEST(FlowAuditTable, ClearIsEpochReset) {
  FlowAuditTable t;
  for (std::uint64_t k = 1; k <= 500; ++k) t.find_or_insert(k).packets = k;
  const std::uint64_t gen_before = t.generation();
  t.clear();
  EXPECT_GT(t.generation(), gen_before);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.find(1), nullptr);
  EXPECT_TRUE(t.entries().empty());
  // Reclaimed slots must come back zeroed, not with stale-epoch residue.
  FlowAuditTable::Entry& e = t.find_or_insert(1);
  EXPECT_EQ(e.packets, 0u);
  EXPECT_EQ(e.out_of_order, 0u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(FlowAuditTable, LatencyBucketEdges) {
  // Bucket 0 is everything below 2^kLatencyShift; bucket b covers
  // [2^(b+kLatencyShift-1), 2^(b+kLatencyShift)).
  EXPECT_EQ(FlowAuditTable::latency_bucket(-5), 0u);
  EXPECT_EQ(FlowAuditTable::latency_bucket(0), 0u);
  EXPECT_EQ(FlowAuditTable::latency_bucket(511), 0u);
  EXPECT_EQ(FlowAuditTable::latency_bucket(512), 1u);
  EXPECT_EQ(FlowAuditTable::latency_bucket(1023), 1u);
  EXPECT_EQ(FlowAuditTable::latency_bucket(1024), 2u);
  EXPECT_EQ(FlowAuditTable::latency_bucket(std::int64_t{1} << 62),
            FlowAuditTable::kLatencyBuckets - 1);
  // Bounds are the exclusive upper edges of those ranges and monotonic.
  EXPECT_EQ(FlowAuditTable::latency_bucket_bound(0), 512);
  EXPECT_EQ(FlowAuditTable::latency_bucket_bound(1), 1024);
  for (std::size_t b = 0; b + 1 < FlowAuditTable::kLatencyBuckets; ++b) {
    EXPECT_LT(FlowAuditTable::latency_bucket_bound(b),
              FlowAuditTable::latency_bucket_bound(b + 1));
  }
}

// ----------------------------------------------------------- FlowAuditProbe ---

struct AuditTotals {
  std::uint64_t packets = 0, delivered = 0, dropped = 0, migrations = 0,
                ooo = 0, fm = 0, cold = 0, histo = 0;
  std::int64_t latency_sum = 0, latency_max = 0;
};

AuditTotals sum_table(const FlowAuditProbe& probe) {
  AuditTotals t;
  for (const auto& e : probe.table().entries()) {
    t.packets += e.packets;
    t.delivered += e.delivered;
    t.dropped += e.dropped;
    t.migrations += e.migrations;
    t.ooo += e.out_of_order;
    t.fm += e.fm_penalties;
    t.cold += e.cold_cache;
    t.latency_sum += e.latency_sum;
    t.latency_max = std::max(t.latency_max, e.latency_max);
    for (const std::uint32_t c : e.latency_log2) t.histo += c;
  }
  return t;
}

// The acceptance bar of the tentpole: on every cell of the golden grid the
// audit table is an exact decomposition of the run report.
TEST(FlowAuditProbe, GoldenGridTotalsMatchReport) {
  const std::vector<std::string> traces = {"plain", "churny"};
  const std::vector<std::string> sched_names = {"FCFS", "StaticHash", "AFS",
                                                "LAPS"};
  for (const std::string& trace : traces) {
    for (const std::string& sched_name : sched_names) {
      for (std::uint64_t seed : {1ull, 42ull}) {
        const ScenarioConfig cfg = golden_scenario(trace, seed, 12.0, false);
        auto sched = make_sched(sched_name);
        FlowAuditProbe audit;
        const SimReport report =
            run_scenario(cfg, *sched, ProbeSet{&audit});
        const AuditTotals t = sum_table(audit);
        const std::string ctx =
            trace + "/" + sched_name + "/" + std::to_string(seed);
        EXPECT_EQ(t.packets, report.offered) << ctx;
        EXPECT_EQ(t.delivered, report.delivered) << ctx;
        EXPECT_EQ(t.dropped, report.dropped) << ctx;
        EXPECT_EQ(t.migrations, report.flow_migrations) << ctx;
        EXPECT_EQ(t.ooo, report.out_of_order) << ctx;
        EXPECT_EQ(t.fm, report.fm_penalties) << ctx;
        EXPECT_EQ(t.cold, report.cold_cache_events) << ctx;
        EXPECT_EQ(t.latency_sum, report.latency_ns.sum()) << ctx;
        EXPECT_EQ(t.latency_max, report.latency_ns.max()) << ctx;
        // Every delivered packet lands in exactly one per-flow bucket.
        EXPECT_EQ(t.histo, report.delivered) << ctx;
      }
    }
  }
}

TEST(FlowAuditProbe, ReuseAcrossRunsIsClean) {
  // The same probe instance over two different runs: the second run's
  // totals must match its own report exactly (epoch-based clear + memo
  // resync leave no residue from run one).
  FlowAuditProbe audit;
  {
    const ScenarioConfig cfg = golden_scenario("plain", 1, 12.0, false);
    auto sched = make_sched("AFS");
    run_scenario(cfg, *sched, ProbeSet{&audit});
    EXPECT_GT(audit.table().size(), 0u);
  }
  const ScenarioConfig cfg = golden_scenario("churny", 42, 12.0, false);
  auto sched = make_sched("LAPS");
  const SimReport report = run_scenario(cfg, *sched, ProbeSet{&audit});
  const AuditTotals t = sum_table(audit);
  EXPECT_EQ(t.packets, report.offered);
  EXPECT_EQ(t.delivered, report.delivered);
  EXPECT_EQ(t.dropped, report.dropped);
}

TEST(FlowAuditProbe, SummaryAttributionIsConsistent) {
  const ScenarioConfig cfg = golden_scenario("churny", 1, 12.0, false);
  auto sched = make_sched("LAPS");
  FlowAuditProbe audit;
  const SimReport report = run_scenario(cfg, *sched, ProbeSet{&audit});
  const FlowAuditSummary s = audit.summary();
  EXPECT_EQ(s.flows, audit.table().size());
  EXPECT_EQ(s.ooo_total, report.out_of_order);
  EXPECT_LE(s.migrated_flows, s.flows);
  EXPECT_LE(s.ooo_flows, s.flows);
  EXPECT_GE(s.ooo_migrated_share, 0.0);
  EXPECT_LE(s.ooo_migrated_share, 1.0);
  EXPECT_GE(s.ooo_topk_migrated_share, 0.0);
  EXPECT_LE(s.ooo_topk_migrated_share, 1.0);
  EXPECT_GT(s.topk_packet_share, 0.0);
  EXPECT_LE(s.topk_packet_share, 1.0);
  EXPECT_EQ(s.top_k, 16u);
  // Idempotent: the deferred fold ran once; asking again changes nothing.
  const FlowAuditSummary again = audit.summary();
  EXPECT_EQ(again.flows, s.flows);
  EXPECT_EQ(again.ooo_total, s.ooo_total);
}

TEST(FlowAuditProbe, SortedEntriesArePacketsDescending) {
  const ScenarioConfig cfg = golden_scenario("plain", 1, 12.0, false);
  auto sched = make_sched("StaticHash");
  FlowAuditProbe audit;
  run_scenario(cfg, *sched, ProbeSet{&audit});
  const auto sorted = audit.sorted_entries();
  ASSERT_GT(sorted.size(), 1u);
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    const bool ordered =
        sorted[i - 1].packets > sorted[i].packets ||
        (sorted[i - 1].packets == sorted[i].packets &&
         sorted[i - 1].key < sorted[i].key);
    EXPECT_TRUE(ordered) << "at " << i;
  }
}

TEST(FlowAuditProbe, ArtifactIsValidJsonAndCapsExplicitly) {
  const ScenarioConfig cfg = golden_scenario("plain", 1, 12.0, false);
  {
    auto sched = make_sched("AFS");
    FlowAuditProbe::Options opts;
    opts.max_rows = 2;
    FlowAuditProbe audit(opts);
    run_scenario(cfg, *sched, ProbeSet{&audit});
    const std::string doc = audit.to_json();
    EXPECT_TRUE(JsonChecker::valid(doc));
    EXPECT_NE(doc.find("\"rows_emitted\": 2"), std::string::npos);
    EXPECT_NE(doc.find("\"flows_total\": "), std::string::npos);
  }
  {
    auto sched = make_sched("AFS");
    FlowAuditProbe::Options opts;
    opts.max_rows = 0;  // 0 = emit every flow
    FlowAuditProbe audit(opts);
    run_scenario(cfg, *sched, ProbeSet{&audit});
    const std::string doc = audit.to_json();
    EXPECT_TRUE(JsonChecker::valid(doc));
    const std::string total = std::to_string(audit.table().size());
    EXPECT_NE(doc.find("\"flows_total\": " + total), std::string::npos);
    EXPECT_NE(doc.find("\"rows_emitted\": " + total), std::string::npos);
  }
}

TEST(FlowAuditProbe, RejectsZeroTopK) {
  FlowAuditProbe::Options opts;
  opts.top_k = 0;
  EXPECT_THROW(FlowAuditProbe{opts}, std::invalid_argument);
}

TEST(FlowAuditProbe, DepartureWithoutDispatchFailsLoudly) {
  // Departures log no flow key (the dispatch seeds the slot memo); a
  // departure for a never-dispatched flow is a probe-ordering bug and must
  // not be silently misattributed.
  FlowAuditProbe audit;
  audit.on_run_begin(RunInfo{});
  audit.on_departure(1000, packet_for(5, 100), 0, 0);
  EXPECT_THROW(audit.summary(), std::logic_error);
}

// ----------------------------------------------------------- AfdAccuracy ---

TEST(AfdAccuracyProbe, LapsStreamsSamplesAtEpochs) {
  const ScenarioConfig cfg = golden_scenario("churny", 1, 12.0, false);
  auto sched = make_sched("LAPS");
  AfdAccuracyProbe acc(*sched, 16);
  const SimReport report =
      run_scenario(cfg, *sched, ProbeSet{&acc}, from_us(100.0));
  // 2 ms of simulated time at 100 us epochs plus the final sample.
  ASSERT_GE(acc.samples().size(), 10u);
  EXPECT_EQ(acc.truth().total(), report.offered);
  TimeNs prev = -1;
  for (const auto& s : acc.samples()) {
    EXPECT_GE(s.t, prev);  // run-end sample may coincide with the last epoch
    prev = s.t;
    EXPECT_GE(s.precision, 0.0);
    EXPECT_LE(s.precision, 1.0);
    EXPECT_GE(s.recall, 0.0);
    EXPECT_LE(s.recall, 1.0);
    EXPECT_GE(s.weighted_recall, 0.0);
    EXPECT_LE(s.weighted_recall, 1.0);
    EXPECT_EQ(s.true_positives + s.false_positives, s.claimed);
    EXPECT_LE(s.true_positives, 16u);
  }
  // Under sustained overload the LAPS AFC holds aggressive flows by the
  // end of the run — the probe must actually see the live snapshot.
  EXPECT_GT(acc.samples().back().claimed, 0u);
  EXPECT_TRUE(JsonChecker::valid(acc.to_json()));
}

TEST(AfdAccuracyProbe, FinalSampleWithoutEpochs) {
  const ScenarioConfig cfg = golden_scenario("plain", 1, 12.0, false);
  auto sched = make_sched("LAPS");
  AfdAccuracyProbe acc(*sched);
  run_scenario(cfg, *sched, ProbeSet{&acc}, /*epoch_ns=*/0);
  // No epochs fired; the run-end sample alone must be present.
  ASSERT_EQ(acc.samples().size(), 1u);
  EXPECT_GT(acc.samples()[0].distinct_flows, 0u);
}

TEST(AfdAccuracyProbe, SchedulerWithoutSnapshotClaimsNothing) {
  const ScenarioConfig cfg = golden_scenario("plain", 1, 12.0, false);
  auto sched = make_sched("FCFS");  // default aggressive_snapshot(): empty
  AfdAccuracyProbe acc(*sched);
  run_scenario(cfg, *sched, ProbeSet{&acc}, from_us(200.0));
  ASSERT_FALSE(acc.samples().empty());
  for (const auto& s : acc.samples()) {
    EXPECT_EQ(s.claimed, 0u);
    EXPECT_EQ(s.precision, 0.0);
    EXPECT_EQ(s.recall, 0.0);
  }
}

TEST(LapsScheduler, AggressiveSnapshotMatchesAfcExtraStats) {
  const ScenarioConfig cfg = golden_scenario("churny", 42, 12.0, false);
  auto sched = make_sched("LAPS");
  run_scenario(cfg, *sched);
  // The snapshot is the AFC contents; it can never exceed the AFC size and
  // is non-empty after an overloaded run with promotions.
  const auto snap = sched->aggressive_snapshot();
  EXPECT_LE(snap.size(), 16u);
  EXPECT_GT(snap.size(), 0u);
}

// --------------------------------------------------------- FlightRecorder ---

FlightRecorderConfig small_ring(std::uint64_t drop_storm = 0,
                                std::uint64_t ooo_spike = 0) {
  FlightRecorderConfig cfg;
  cfg.capacity = 8;
  cfg.drop_storm = drop_storm;
  cfg.ooo_spike = ooo_spike;
  cfg.window_ns = from_us(1000.0);
  return cfg;
}

TEST(FlightRecorderProbe, DropStormTriggersAndFreezes) {
  FlightRecorderProbe rec(small_ring(/*drop_storm=*/4));
  rec.on_run_begin(RunInfo{});
  for (std::uint32_t i = 0; i < 4; ++i) {
    rec.on_drop(100 + i, packet_for(i, 100), 0);
  }
  EXPECT_TRUE(rec.triggered());
  EXPECT_EQ(rec.trigger_reason(), "drop_storm");
  EXPECT_TRUE(rec.should_dump());
  // After the trigger the ring records capacity/2 = 4 more events and then
  // freezes: later events must not overwrite the lead-up.
  for (std::uint32_t i = 0; i < 32; ++i) {
    rec.on_service_start(200 + i, packet_for(i, 100), 0, 10, false, false);
  }
  EXPECT_LE(rec.num_events(), 8u);
  const std::string doc = rec.to_json();
  EXPECT_TRUE(JsonChecker::valid(doc));
  EXPECT_NE(doc.find("drop_storm"), std::string::npos);
}

TEST(FlightRecorderProbe, OooSpikeTriggers) {
  FlightRecorderProbe rec(small_ring(0, /*ooo_spike=*/5));
  rec.on_run_begin(RunInfo{});
  rec.on_departure(500, packet_for(1, 100), 0, /*new_ooo=*/5);
  EXPECT_TRUE(rec.triggered());
  EXPECT_EQ(rec.trigger_reason(), "ooo_spike");
}

TEST(FlightRecorderProbe, NoAnomalyNoDumpUnlessForced) {
  FlightRecorderProbe quiet(small_ring());
  quiet.on_run_begin(RunInfo{});
  quiet.on_drop(100, packet_for(1, 50), 0);
  EXPECT_FALSE(quiet.triggered());
  EXPECT_FALSE(quiet.should_dump());

  FlightRecorderConfig forced = small_ring();
  forced.always_dump = true;
  FlightRecorderProbe always(forced);
  always.on_run_begin(RunInfo{});
  EXPECT_FALSE(always.triggered());
  EXPECT_TRUE(always.should_dump());
  EXPECT_TRUE(JsonChecker::valid(always.to_json()));
}

TEST(FlightRecorderProbe, RingKeepsMostRecentEvents) {
  FlightRecorderConfig cfg = small_ring();
  cfg.capacity = 4;
  FlightRecorderProbe rec(cfg);
  rec.on_run_begin(RunInfo{});
  for (std::uint32_t i = 0; i < 10; ++i) {
    rec.on_drop(from_us(1.0) * (i + 1), packet_for(i, 0), 0);
  }
  EXPECT_EQ(rec.num_events(), 4u);
  const std::string doc = rec.to_json();
  EXPECT_TRUE(JsonChecker::valid(doc));
  // Only the four most recent drops (at 7, 8, 9, 10 us) survive, oldest
  // first in the dump.
  EXPECT_EQ(doc.find("\"ts\":6.000"), std::string::npos);
  std::size_t p7 = doc.find("\"ts\":7.000");
  std::size_t p10 = doc.find("\"ts\":10.000");
  EXPECT_NE(p7, std::string::npos);
  EXPECT_NE(p10, std::string::npos);
  EXPECT_LT(p7, p10);
}

TEST(FlightRecorderProbe, TriggersInsideRealOverloadRun) {
  const ScenarioConfig cfg = golden_scenario("plain", 1, 12.0, false);
  auto sched = make_sched("FCFS");
  FlightRecorderConfig rc;
  rc.drop_storm = 16;
  rc.window_ns = from_us(100.0);
  FlightRecorderProbe rec(rc);
  const SimReport report = run_scenario(cfg, *sched, ProbeSet{&rec});
  ASSERT_GT(report.dropped, 0u);  // 12 Mpps on 8 Mpps capacity must drop
  EXPECT_TRUE(rec.triggered());
  EXPECT_EQ(rec.trigger_reason(), "drop_storm");
  EXPECT_GT(rec.num_events(), 0u);
  EXPECT_TRUE(JsonChecker::valid(rec.to_json()));
}

// ------------------------------------- ChromeTrace JSON escaping (pinned) ---

TEST(ChromeTraceProbe, HostileRunLabelsStayValidJson) {
  // Scenario names flow into the trace's process_name metadata verbatim;
  // quotes, backslashes, and control characters must come out escaped.
  ScenarioConfig cfg = golden_scenario("plain", 1, 10.0, false);
  cfg.name = "quo\"ted\\back\nslash\ttab";
  auto sched = make_sched("StaticHash");
  ChromeTraceProbe trace;
  run_scenario(cfg, *sched, ProbeSet{&trace});
  ASSERT_GT(trace.num_events(), 0u);
  const std::string doc = trace.to_json();
  EXPECT_TRUE(JsonChecker::valid(doc));
  EXPECT_NE(doc.find("quo\\\"ted\\\\back\\nslash\\ttab"), std::string::npos);
}

TEST(ChromeTraceProbe, GoldenRunProducesValidJson) {
  const ScenarioConfig cfg = golden_scenario("churny", 42, 12.0, false);
  auto sched = make_sched("LAPS");
  ChromeTraceProbe trace;
  run_scenario(cfg, *sched, ProbeSet{&trace});
  EXPECT_TRUE(JsonChecker::valid(trace.to_json()));
}

// -------------------------------------------- TimeSeriesProbe edge cases ---

TEST(TimeSeriesProbe, EventsAfterFinalEpochKeepSentinel) {
  TimeSeriesProbe series(from_us(100.0));
  series.on_run_begin(RunInfo{});
  // Window 0 closes with an epoch; window 1 receives events but the run
  // ends before its boundary epoch fires.
  series.on_arrival(from_us(50.0), packet_for(1, from_us(50.0)));
  const std::vector<CoreView> cores(4);
  series.on_epoch(from_us(100.0), cores);
  series.on_arrival(from_us(150.0), packet_for(2, from_us(150.0)));
  series.on_run_end(RunEnd{});
  ASSERT_EQ(series.num_windows(), 2u);
  EXPECT_EQ(series.windows()[0].arrivals, 1u);
  EXPECT_GE(series.windows()[0].queue_depth_mean, 0.0);
  EXPECT_EQ(series.windows()[1].arrivals, 1u);
  EXPECT_EQ(series.windows()[1].queue_depth_mean, -1.0);  // never sampled
  EXPECT_TRUE(JsonChecker::valid(series.to_json()));
}

TEST(TimeSeriesProbe, DropsOnlyWindowIsCounted) {
  TimeSeriesProbe series(from_us(100.0));
  series.on_run_begin(RunInfo{});
  // A window containing nothing but drops (e.g. a full-queue burst whose
  // arrivals landed in the previous window) must still materialize.
  series.on_drop(from_us(120.0), packet_for(1, from_us(20.0)), 0);
  series.on_drop(from_us(130.0), packet_for(2, from_us(30.0)), 1);
  series.on_run_end(RunEnd{});
  ASSERT_EQ(series.num_windows(), 2u);
  EXPECT_EQ(series.windows()[1].drops, 2u);
  EXPECT_EQ(series.windows()[1].arrivals, 0u);
  EXPECT_EQ(series.windows()[1].departures, 0u);
  EXPECT_EQ(series.windows()[0].drops, 0u);
}

TEST(TimeSeriesProbe, SampledWindowsLoseSentinel) {
  const ScenarioConfig cfg = golden_scenario("plain", 1, 12.0, false);
  auto sched = make_sched("AFS");
  TimeSeriesProbe series(from_us(100.0));
  run_scenario(cfg, *sched, ProbeSet{&series}, series.window_ns());
  ASSERT_GE(series.num_windows(), 10u);
  // Every window whose boundary epoch fired carries a real sample; only
  // the final partial window may keep the -1 sentinel.
  for (std::size_t i = 0; i + 1 < series.num_windows(); ++i) {
    EXPECT_GE(series.windows()[i].queue_depth_mean, 0.0) << "window " << i;
  }
}

}  // namespace
}  // namespace laps
