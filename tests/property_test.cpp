// Property-based suites: invariants that must hold for every scheduler,
// every seed, and randomized operation sequences — the sweeps that catch
// what example-based tests miss.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "baselines/adaptive_hash.h"
#include "baselines/afs.h"
#include "baselines/batch.h"
#include "baselines/fcfs.h"
#include "baselines/oracle_topk.h"
#include "baselines/static_hash.h"
#include "core/laps.h"
#include "core/map_table.h"
#include "sim/fault.h"
#include "sim/flight_recorder.h"
#include "sim/flow_audit.h"
#include "sim/report_json.h"
#include "sim/scenarios.h"
#include "trace/synthetic.h"

namespace laps {
namespace {

// ------------------------------------------------ universal sim invariants ---

enum class SchedulerKind {
  kFcfs,
  kStaticHash,
  kAfs,
  kOracle,
  kAdaptive,
  kCombined,
  kLaps,
  kLapsGated,
};

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs: return std::make_unique<FcfsScheduler>();
    case SchedulerKind::kStaticHash:
      return std::make_unique<StaticHashScheduler>();
    case SchedulerKind::kAfs: return std::make_unique<AfsScheduler>();
    case SchedulerKind::kOracle:
      return std::make_unique<OracleTopKScheduler>(16);
    case SchedulerKind::kAdaptive:
      return std::make_unique<AdaptiveHashScheduler>();
    case SchedulerKind::kCombined:
      return std::make_unique<CombinedAdaptiveScheduler>();
    case SchedulerKind::kLaps: {
      LapsConfig cfg;
      cfg.num_services = kNumServices;
      return std::make_unique<LapsScheduler>(cfg);
    }
    case SchedulerKind::kLapsGated: {
      LapsConfig cfg;
      cfg.num_services = kNumServices;
      cfg.power_gating = true;
      return std::make_unique<LapsScheduler>(cfg);
    }
  }
  return nullptr;
}

std::string kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFcfs: return "Fcfs";
    case SchedulerKind::kStaticHash: return "StaticHash";
    case SchedulerKind::kAfs: return "Afs";
    case SchedulerKind::kOracle: return "Oracle";
    case SchedulerKind::kAdaptive: return "Adaptive";
    case SchedulerKind::kCombined: return "Combined";
    case SchedulerKind::kLaps: return "Laps";
    case SchedulerKind::kLapsGated: return "LapsGated";
  }
  return "?";
}

class EverySchedulerInvariants
    : public ::testing::TestWithParam<std::tuple<SchedulerKind, int>> {};

TEST_P(EverySchedulerInvariants, ConservationOrderAndDeterminism) {
  const auto [kind, seed] = GetParam();
  ScenarioOptions options;
  options.seconds = 0.01;
  options.seed = static_cast<std::uint64_t>(seed);
  // Overload scenario stresses every code path (drops, migration,
  // reallocation).
  const auto cfg = make_paper_scenario("T5", options);

  auto sched_a = make_scheduler(kind);
  const auto a = run_scenario(cfg, *sched_a);

  // Conservation: every offered packet is delivered or dropped.
  EXPECT_EQ(a.offered, a.delivered + a.dropped);
  // Per-service accounting adds up.
  std::uint64_t offered_sum = 0, dropped_sum = 0;
  for (std::size_t s = 0; s < kNumServices; ++s) {
    offered_sum += a.offered_by_service[s];
    dropped_sum += a.dropped_by_service[s];
  }
  EXPECT_EQ(offered_sum, a.offered);
  EXPECT_EQ(dropped_sum, a.dropped);
  // Latency recorded for every delivered packet.
  EXPECT_EQ(a.latency_ns.count(), a.delivered);
  // Out-of-order cannot exceed deliveries; utilization is a fraction.
  EXPECT_LE(a.out_of_order, a.delivered);
  EXPECT_GE(a.mean_core_utilization, 0.0);
  EXPECT_LE(a.mean_core_utilization, 1.0);

  // Determinism: a fresh scheduler on the same config reproduces exactly.
  auto sched_b = make_scheduler(kind);
  const auto b = run_scenario(cfg, *sched_b);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.out_of_order, b.out_of_order);
  EXPECT_EQ(a.flow_migrations, b.flow_migrations);
  EXPECT_EQ(a.cold_cache_events, b.cold_cache_events);
  EXPECT_EQ(a.latency_ns.sum(), b.latency_ns.sum());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, EverySchedulerInvariants,
    ::testing::Combine(::testing::Values(SchedulerKind::kFcfs,
                                         SchedulerKind::kStaticHash,
                                         SchedulerKind::kAfs,
                                         SchedulerKind::kOracle,
                                         SchedulerKind::kAdaptive,
                                         SchedulerKind::kCombined,
                                         SchedulerKind::kLaps,
                                         SchedulerKind::kLapsGated),
                       ::testing::Values(1, 7)),
    [](const auto& info) {
      return kind_name(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// Flow-affinity property: for every hash-based scheduler, two consecutive
// packets of the same flow with no intervening load change go to the same
// core.
class HashAffinity : public ::testing::TestWithParam<SchedulerKind> {};

class QuietView final : public NpuView {
 public:
  explicit QuietView(std::size_t n) : cores_(n) {
    for (auto& c : cores_) c.idle_since = -1;
  }
  TimeNs now() const override { return 0; }
  std::span<const CoreView> cores() const override {
    return {cores_.data(), cores_.size()};
  }
  std::uint32_t queue_capacity() const override { return 32; }

 private:
  std::vector<CoreView> cores_;
};

TEST_P(HashAffinity, SameFlowSameCoreWhenQuiet) {
  auto sched = make_scheduler(GetParam());
  sched->attach(8);
  QuietView view(8);
  SyntheticTraceSpec spec;
  spec.num_flows = 500;
  spec.seed = 17;
  SyntheticTrace trace(spec);
  std::map<std::uint32_t, CoreId> homes;
  for (int i = 0; i < 5'000; ++i) {
    const auto rec = trace.next();
    SimPacket pkt;
    pkt.tuple = rec->tuple;
    pkt.gflow = rec->flow_id;
    pkt.service = ServicePath::kIpForward;
    const CoreId core = sched->schedule(pkt, view);
    const auto [it, inserted] = homes.emplace(rec->flow_id, core);
    if (!inserted) {
      ASSERT_EQ(it->second, core) << "flow " << rec->flow_id << " moved "
                                  << "under zero load (" << sched->name()
                                  << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(HashBased, HashAffinity,
                         ::testing::Values(SchedulerKind::kStaticHash,
                                           SchedulerKind::kAfs,
                                           SchedulerKind::kOracle,
                                           SchedulerKind::kAdaptive,
                                           SchedulerKind::kCombined,
                                           SchedulerKind::kLaps),
                         [](const auto& info) { return kind_name(info.param); });

// --------------------------------------------------- MapTable model check ---

TEST(MapTableProperty, RandomGrowShrinkAgainstInvariant) {
  // Under any interleaving of add/remove, every hash maps to a bucket in
  // range, b stays within [m, 2m), and grow disturbs only the split bucket.
  Rng rng(99);
  for (int round = 0; round < 30; ++round) {
    std::vector<CoreId> initial;
    const std::size_t n = 1 + rng.below(6);
    for (CoreId c = 0; c < n; ++c) initial.push_back(c);
    MapTable table(initial);
    CoreId next_core = static_cast<CoreId>(n);

    for (int step = 0; step < 60; ++step) {
      ASSERT_GE(table.size(), table.base());
      ASSERT_LT(table.size(), 2 * table.base());

      std::vector<std::size_t> before(4096);
      for (std::uint32_t h = 0; h < 4096; ++h) {
        const std::size_t idx = table.bucket_index(static_cast<std::uint16_t>(h));
        ASSERT_LT(idx, table.size());
        before[h] = idx;
      }

      if (rng.chance(0.5)) {
        const std::size_t split = table.size() - table.base();
        const std::size_t old_base = table.base();  // displacement uses the
        table.add_core(next_core++);                // pre-grow modulus
        for (std::uint32_t h = 0; h < 4096; ++h) {
          const std::size_t idx =
              table.bucket_index(static_cast<std::uint16_t>(h));
          if (before[h] == split) {
            ASSERT_TRUE(idx == before[h] || idx == before[h] + old_base);
          } else {
            ASSERT_EQ(idx, before[h]) << "non-split bucket moved";
          }
        }
      } else if (table.size() > 1) {
        const auto& buckets = table.buckets();
        const CoreId victim = buckets[rng.below(buckets.size())];
        table.remove_core(victim);
      }
    }
  }
}

// ----------------------------------------------- AFD vs reference model ---

TEST(AfdProperty, MatchesBruteForceTwoLevelModel) {
  // Replay a random stream through the AFD and through a direct
  // reimplementation of the paper's rules using plain containers.
  AfdConfig cfg;
  cfg.afc_entries = 4;
  cfg.annex_entries = 8;
  cfg.promote_threshold = 3;
  cfg.aging_period = 0;

  struct RefCache {
    // key -> (count, last_touch) with LFU+LRU eviction.
    std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> entries;
    std::size_t capacity;

    explicit RefCache(std::size_t cap) : capacity(cap) {}

    std::uint64_t* find(std::uint64_t key, std::uint64_t tick) {
      auto it = entries.find(key);
      if (it == entries.end()) return nullptr;
      it->second.second = tick;
      return &it->second.first;
    }
    /// Evicts the LFU entry (LRU among ties); returns {key, count}.
    std::pair<std::uint64_t, std::uint64_t> evict() {
      auto victim = entries.begin();
      for (auto it = entries.begin(); it != entries.end(); ++it) {
        if (it->second.first < victim->second.first ||
            (it->second.first == victim->second.first &&
             it->second.second < victim->second.second)) {
          victim = it;
        }
      }
      const auto out = std::make_pair(victim->first, victim->second.first);
      entries.erase(victim);
      return out;
    }
    void insert(std::uint64_t key, std::uint64_t count, std::uint64_t tick) {
      entries[key] = {count, tick};
    }
  };

  for (std::uint64_t seed : {3u, 14u, 159u}) {
    Afd afd(cfg);
    RefCache afc(4), annex(8);
    Rng rng(seed);
    std::uint64_t tick = 0;

    for (int i = 0; i < 20'000; ++i) {
      const std::uint64_t key = rng.below(40);  // small space forces churn
      ++tick;
      afd.access(key);
      // Reference model of Sec. III-F.
      if (auto* count = afc.find(key, tick)) {
        *count += 1;
      } else if (auto* annex_count = annex.find(key, tick)) {
        *annex_count += 1;
        if (*annex_count > cfg.promote_threshold) {
          const std::uint64_t promoted_count = *annex_count;
          annex.entries.erase(key);
          if (afc.entries.size() == 4) {
            // The AFC victim parks in the annex with its counter (victim-
            // cache behaviour), evicting the annex LFU if needed. The
            // promotion just freed an annex slot, so no eviction occurs
            // here in practice, but model it faithfully anyway.
            const auto [victim_key, victim_count] = afc.evict();
            if (annex.entries.size() == 8) annex.evict();
            annex.insert(victim_key, victim_count, tick);
          }
          afc.insert(key, promoted_count, tick);
        }
      } else {
        if (annex.entries.size() == 8) annex.evict();
        annex.insert(key, 1, tick);
      }
      // Membership must agree (counters are checked via behaviour).
      ASSERT_EQ(afd.is_aggressive(key), afc.entries.count(key) == 1)
          << "seed " << seed << " step " << i;
    }
  }
}

// ------------------------------------- randomized configs, ROB invariants ---

// Conservation and order-restoration invariants under *randomized* scenario
// shapes (cores, queue depth, horizon, load, service count), not just the
// paper's fixed tables. With the egress ReorderBuffer on, three things must
// hold for every scheduler and every configuration:
//   1. offered == delivered + dropped          (packet conservation)
//   2. out_of_order == 0                       (the ROB restores order)
//   3. rob_released + rob_stranded == delivered (every delivered packet
//      leaves through the buffer or is still held at the horizon)
TEST(RandomizedConfigProperty, ConservationAndRestoredOrderEverywhere) {
  const std::vector<std::pair<std::string,
                              std::function<std::unique_ptr<Scheduler>()>>>
      schedulers = {
          {"FCFS", [] { return std::make_unique<FcfsScheduler>(); }},
          {"AFS", [] { return std::make_unique<AfsScheduler>(); }},
          {"StaticHash", [] { return std::make_unique<StaticHashScheduler>(); }},
          {"Batch", [] { return std::make_unique<BatchScheduler>(); }},
      };

  Rng rng(20130806);
  const auto trace_names = trace_registry_names();
  for (int round = 0; round < 8; ++round) {
    ScenarioConfig cfg;
    cfg.name = "random" + std::to_string(round);
    const std::size_t num_services = 1 + rng.below(kNumServices);
    cfg.num_cores = num_services + 1 + rng.below(12);
    cfg.queue_capacity = static_cast<std::uint32_t>(4 + rng.below(61));
    cfg.seconds = 0.002 + 0.002 * rng.uniform();
    cfg.seed = rng.next();
    cfg.restore_order = true;
    // Aggregate offered load 50%-160% of a rough forwarding capacity, so
    // roughly half the rounds overload (drops exercise ReorderBuffer gaps).
    const double total_mpps =
        static_cast<double>(cfg.num_cores) * 2.0 * (0.5 + 1.1 * rng.uniform());
    for (std::size_t s = 0; s < num_services; ++s) {
      ServiceTraffic t;
      t.path = static_cast<ServicePath>(s);
      t.rate = HoltWintersParams{total_mpps / num_services, 0.0, 0.0, 60.0,
                                 0.0};
      t.trace = make_trace(trace_names[rng.below(trace_names.size())]);
      cfg.services.push_back(std::move(t));
    }

    for (const auto& [name, make] : schedulers) {
      auto scheduler = make();
      const SimReport r = run_scenario(cfg, *scheduler);
      const std::string ctx = cfg.name + "/" + name + " cores=" +
                              std::to_string(cfg.num_cores) + " q=" +
                              std::to_string(cfg.queue_capacity);
      ASSERT_EQ(r.offered, r.delivered + r.dropped) << ctx;
      ASSERT_EQ(r.out_of_order, 0u) << ctx;
      ASSERT_EQ(r.latency_ns.count(), r.delivered) << ctx;
      const double released = r.extra.at("rob_released_packets");
      const double stranded = r.extra.at("rob_stranded_packets");
      ASSERT_EQ(static_cast<std::uint64_t>(released + stranded), r.delivered)
          << ctx << " released=" << released << " stranded=" << stranded;
    }

    // LAPS partitions cores among services, so its num_services must match
    // the scenario's service count (paths 0..n-1 by construction above).
    LapsConfig laps_cfg;
    laps_cfg.num_services = num_services;
    LapsScheduler laps(laps_cfg);
    const SimReport r = run_scenario(cfg, laps);
    ASSERT_EQ(r.offered, r.delivered + r.dropped) << cfg.name << "/LAPS";
    ASSERT_EQ(r.out_of_order, 0u) << cfg.name << "/LAPS";
    ASSERT_EQ(static_cast<std::uint64_t>(r.extra.at("rob_released_packets") +
                                         r.extra.at("rob_stranded_packets")),
              r.delivered)
        << cfg.name << "/LAPS";
  }
}

// -------------------------------------------- Incremental hashing at scale ---

class DisruptionSweep : public ::testing::TestWithParam<int> {};

TEST_P(DisruptionSweep, GrowMovesAtMostOneSplitBucketOfTraffic) {
  const int b = GetParam();
  std::vector<CoreId> cores;
  for (CoreId c = 0; c < static_cast<CoreId>(b); ++c) cores.push_back(c);
  MapTable table(cores);
  std::vector<std::size_t> before(65536);
  for (std::uint32_t h = 0; h < 65536; ++h) {
    before[h] = table.bucket_index(static_cast<std::uint16_t>(h));
  }
  table.add_core(static_cast<CoreId>(b));
  int moved = 0;
  for (std::uint32_t h = 0; h < 65536; ++h) {
    moved += before[h] != table.bucket_index(static_cast<std::uint16_t>(h));
  }
  // At most half of one split bucket's share of the hash space moves
  // (plus rounding): 65536 / (2 * base), where base is the pre-grow m.
  const double expected = 65536.0 / (2.0 * std::bit_floor(static_cast<unsigned>(b)));
  EXPECT_LE(moved, expected * 1.25 + 64) << "b=" << b;
  EXPECT_GT(moved, 0) << "b=" << b;
}

INSTANTIATE_TEST_SUITE_P(AllB, DisruptionSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 12, 16,
                                           24, 31, 32));

// ------------------------------------- heap vs wheel: bit-identical runs ---

// The TimingWheel replaced the EventHeap as the engine's completion queue;
// the heap stays behind --event-queue=heap as the differential oracle.
// These suites are the proof obligation: across randomized scenario
// configurations — schedulers, core counts, queue depths, overload levels,
// order restoration, fault schedules — a wheel run and a heap run must be
// *bit-identical* on every observable surface: the report JSON, the
// per-flow audit table, and the flight-recorder event sequence. Not
// "statistically equivalent": byte-equal strings.

/// Every deterministic observation surface of one simulation run.
struct ObservedRun {
  std::string report;
  std::string audit;
  std::string flight;
};

ObservedRun run_with_queue(ScenarioConfig cfg, Scheduler& scheduler,
                           EventQueueKind queue) {
  cfg.event_queue = queue;
  FlowAuditProbe audit(FlowAuditProbe::Options{8, 0});
  FlightRecorderConfig flight_cfg;
  flight_cfg.capacity = 1024;
  flight_cfg.always_dump = true;
  FlightRecorderProbe flight(flight_cfg);
  ProbeSet extra;
  extra.add(&audit);
  extra.add(&flight);
  const SimReport report = run_scenario(cfg, scheduler, extra);
  return ObservedRun{report_to_json(report), audit.to_json(),
                     flight.to_json()};
}

void expect_bit_identical(const ScenarioConfig& cfg,
                          const std::function<std::unique_ptr<Scheduler>()>& make,
                          const std::string& ctx) {
  auto sched_heap = make();
  const ObservedRun heap =
      run_with_queue(cfg, *sched_heap, EventQueueKind::kHeap);
  auto sched_wheel = make();
  const ObservedRun wheel =
      run_with_queue(cfg, *sched_wheel, EventQueueKind::kWheel);
  ASSERT_EQ(heap.report, wheel.report) << ctx;
  ASSERT_EQ(heap.audit, wheel.audit) << ctx;
  ASSERT_EQ(heap.flight, wheel.flight) << ctx;
}

TEST(EventQueueDifferential, BitIdenticalAcrossRandomizedConfigurations) {
  const std::vector<std::pair<std::string,
                              std::function<std::unique_ptr<Scheduler>()>>>
      schedulers = {
          {"FCFS", [] { return std::make_unique<FcfsScheduler>(); }},
          {"AFS", [] { return std::make_unique<AfsScheduler>(); }},
          {"Adaptive", [] { return std::make_unique<AdaptiveHashScheduler>(); }},
      };

  Rng rng(0x7EE1);
  const auto trace_names = trace_registry_names();
  for (int round = 0; round < 6; ++round) {
    ScenarioConfig cfg;
    cfg.name = "diff" + std::to_string(round);
    const std::size_t num_services =
        1 + rng.below(std::min(kNumServices, trace_names.size()));
    cfg.num_cores = num_services + 1 + rng.below(12);
    cfg.queue_capacity = static_cast<std::uint32_t>(4 + rng.below(61));
    cfg.seconds = 0.002 + 0.002 * rng.uniform();
    cfg.seed = rng.next();
    cfg.restore_order = round % 2 == 1;  // both egress paths
    const double total_mpps =
        static_cast<double>(cfg.num_cores) * 2.0 * (0.5 + 1.1 * rng.uniform());
    // Distinct traces per service: the FlowAuditProbe's attribution keys
    // assume gflow <-> flow key is 1:1, which duplicate traces across
    // services would break (two services replaying one trace share tuples).
    std::vector<std::string> pool = trace_names;
    for (std::size_t s = 0; s < num_services; ++s) {
      ServiceTraffic t;
      t.path = static_cast<ServicePath>(s);
      t.rate = HoltWintersParams{total_mpps / num_services, 0.0, 0.0, 60.0,
                                 0.0};
      const std::size_t pick = rng.below(pool.size());
      t.trace = make_trace(pool[pick]);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(pick));
      cfg.services.push_back(std::move(t));
    }
    const auto& [name, make] = schedulers[round % schedulers.size()];
    expect_bit_identical(cfg, make,
                         cfg.name + "/" + name + " cores=" +
                             std::to_string(cfg.num_cores) + " q=" +
                             std::to_string(cfg.queue_capacity));
  }
}

// Fault schedules are where the queues diverge structurally the most: the
// wheel must replay lazily-cancelled (generation-stale) completions and
// stall wake-ups in exactly the heap's order for flush accounting and
// recovery timelines to match.
TEST(EventQueueDifferential, BitIdenticalUnderRandomFaultSchedules) {
  Rng rng(0xFA017);
  for (int round = 0; round < 6; ++round) {
    ScenarioOptions options;
    options.seconds = 0.004;
    options.seed = rng.next();
    ScenarioConfig cfg =
        make_paper_scenario(round % 2 == 0 ? "T5" : "T2", options);
    cfg.name = "fault_diff" + std::to_string(round);

    RandomFaultParams params;
    params.horizon = from_us(options.seconds * 1e6);
    params.num_cores = cfg.num_cores;
    cfg.faults = std::make_shared<const FaultPlan>(
        random_fault_plan(rng.next(), params));

    expect_bit_identical(
        cfg, [] { return std::make_unique<FcfsScheduler>(); },
        cfg.name + " spec=" + cfg.faults->to_spec());
  }
}

}  // namespace
}  // namespace laps
