// Tests for the string-spec SchedulerRegistry (src/exp/scheduler_registry):
// fail-fast errors for malformed and unknown specs, the canonical-form
// round-trip property (fuzzed), and the aggressive_snapshot() read-only
// contract. Also pins the --event-queue fail-fast error, the registry's
// sibling spec grammar.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "exp/dispatcher_registry.h"
#include "exp/scheduler_registry.h"
#include "traffic/generator.h"
#include "sim/scheduler.h"
#include "sim/timing_wheel.h"
#include "util/rng.h"
#include "util/time.h"

namespace laps {
namespace {

class FakeView final : public NpuView {
 public:
  explicit FakeView(std::size_t n) : cores_(n) {
    for (auto& c : cores_) c.idle_since = 0;
  }
  TimeNs now() const override { return now_; }
  std::span<const CoreView> cores() const override {
    return {cores_.data(), cores_.size()};
  }
  std::uint32_t queue_capacity() const override { return 32; }

  TimeNs now_ = 0;
  std::vector<CoreView> cores_;
};

SimPacket make_packet(std::uint32_t flow) {
  SimPacket pkt;
  pkt.tuple.src_ip = 0x0A000000u + flow;
  pkt.tuple.dst_ip = static_cast<std::uint32_t>(mix64(flow) >> 32) | 1u;
  pkt.tuple.src_port = static_cast<std::uint16_t>(1024 + flow % 60000);
  pkt.tuple.dst_port = 80;
  pkt.tuple.protocol = 6;
  pkt.gflow = flow;
  pkt.service = ServicePath::kIpForward;
  return pkt;
}

/// The message a bad spec dies with, or "" if the spec parsed.
std::string error_of(const std::string& spec) {
  try {
    make_scheduler(spec);
    return "";
  } catch (const SchedulerSpecError& e) {
    return e.what();
  }
}

// ---------------------------------------------------- fail-fast errors ---

TEST(SchedulerSpecErrors, UnknownSchedulerListsEveryValidName) {
  const std::string msg = error_of("bogus");
  ASSERT_FALSE(msg.empty()) << "unknown scheduler must throw";
  EXPECT_NE(msg.find("bogus"), std::string::npos)
      << "error must name the offending token: " << msg;
  for (const std::string& name : scheduler_names()) {
    EXPECT_NE(msg.find(name), std::string::npos)
        << "error must list valid scheduler '" << name << "': " << msg;
  }
}

TEST(SchedulerSpecErrors, UnknownParameterListsValidKeys) {
  const std::string msg = error_of("laps:zzz=1");
  ASSERT_FALSE(msg.empty());
  EXPECT_NE(msg.find("zzz"), std::string::npos) << msg;
  for (const char* key : {"afc", "power", "idle_th", "services", "pins"}) {
    EXPECT_NE(msg.find(key), std::string::npos)
        << "error must list valid key '" << key << "': " << msg;
  }
}

TEST(SchedulerSpecErrors, MalformedSpecsAllThrow) {
  for (const char* spec : {
           "",                    // empty spec
           ":afc=1",              // empty scheduler name
           "laps:",               // empty parameter list
           "laps:afc",            // parameter without '='
           "laps:=5",             // empty key
           "laps:afc=",           // empty value
           "laps:afc=abc",        // non-numeric size
           "laps:afc=64,afc=32",  // duplicate key
           "laps:sample=lots",    // non-numeric double
           "laps:power=maybe",    // non-boolean
           "laps:idle_th=5furlongs",  // unknown duration suffix
           "fcfs:afc=1",          // parameter on a parameterless scheduler
       }) {
    EXPECT_THROW(make_scheduler(spec), SchedulerSpecError) << spec;
    EXPECT_THROW(canonical_scheduler_spec(spec), SchedulerSpecError) << spec;
  }
}

TEST(SchedulerSpecErrors, ListRejectsEmptySegments) {
  EXPECT_THROW(parse_scheduler_list("fcfs;;afs"), SchedulerSpecError);
  EXPECT_THROW(parse_scheduler_list(";fcfs"), SchedulerSpecError);
  EXPECT_TRUE(parse_scheduler_list("").empty());
  const auto specs = parse_scheduler_list("fcfs;laps:afc=64");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "FCFS");
  EXPECT_EQ(specs[1].name, "LAPS");
}

TEST(SchedulerSpecErrors, HelpMentionsEveryScheduler) {
  const std::string help = scheduler_spec_help();
  for (const std::string& name : scheduler_names()) {
    EXPECT_NE(help.find(name), std::string::npos) << name;
  }
}

TEST(EventQueueSpec, UnknownSpecFailsFastListingValidKinds) {
  EXPECT_EQ(parse_event_queue_kind("wheel"), EventQueueKind::kWheel);
  EXPECT_EQ(parse_event_queue_kind("heap"), EventQueueKind::kHeap);
  try {
    parse_event_queue_kind("calendar");
    FAIL() << "unknown --event-queue spec must throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("calendar"), std::string::npos) << msg;
    EXPECT_NE(msg.find("wheel"), std::string::npos) << msg;
    EXPECT_NE(msg.find("heap"), std::string::npos) << msg;
  }
}

// ------------------------------------------------- canonical round trip ---

/// Drives `n` packets of a skewed flow population through `s` and returns
/// the decision sequence. The view carries mild load skew and an advancing
/// clock so load-sensitive and time-sensitive paths (AFS shifts, FCFS scan,
/// power gating) all execute.
std::vector<CoreId> decisions(Scheduler& s, std::size_t cores, int n) {
  s.attach(cores);
  FakeView view(cores);
  std::vector<CoreId> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    view.now_ += 1'000;  // 1 us per packet
    for (std::size_t c = 0; c < cores; ++c) {
      view.cores_[c].queue_len = static_cast<std::uint32_t>((i + c) % 40);
    }
    // Zipf-ish: flow 0 dominates, a few mid flows, a long tail.
    const std::uint32_t flow =
        i % 3 == 0 ? 0u : (i % 7 == 0 ? 1u + i % 5 : 100u + i % 97);
    out.push_back(s.schedule(make_packet(flow), view));
  }
  return out;
}

/// Asserts spec and canonical(spec) build behaviourally identical
/// schedulers and that canonical is a fixed point.
void check_round_trip(const std::string& spec) {
  SCOPED_TRACE(spec);
  const std::string canon = canonical_scheduler_spec(spec);
  EXPECT_EQ(canonical_scheduler_spec(canon), canon)
      << "canonical form must be a fixed point";
  auto a = make_scheduler(spec);
  auto b = make_scheduler(canon);
  EXPECT_EQ(a->name(), b->name());
  EXPECT_EQ(decisions(*a, 8, 400), decisions(*b, 8, 400));
  EXPECT_EQ(a->extra_stats(), b->extra_stats());
}

TEST(RegistryRoundTrip, HandWrittenSpecs) {
  for (const char* spec : {
           "fcfs",
           "hash",
           "hash:buckets=128",
           "afs",
           "afs:high_th=16,cooldown=512",
           "adaptive",
           "adaptive:period=500,slack=0.25,moves=2",
           "adaptive-afd",
           "adaptive-afd:afc=8,promote=4,beat_min=0",
           "batch",
           "batch:batch=8",
           "oracle",
           "oracle:k=8,refresh=1024",
           "laps",
           "laps:services=1",
           "laps:afc=64,idle_th=5us,power=1",
           "laps:power=1,sleep_after=20us,consolidate_window=512",
           "hash-migrate",
           "hash-migrate:high_th=12,pins=64,afc=32",
           "afs-power",
           "afs-power:idle_th=2us,wake_wm=8,min_unparked=2",
       }) {
    check_round_trip(spec);
  }
}

TEST(RegistryRoundTrip, DefaultSpecCanonicalIsBareName) {
  // A spec with no parameters has nothing non-default to print.
  for (const std::string& name : scheduler_names()) {
    EXPECT_EQ(canonical_scheduler_spec(name), name);
  }
  // Restating a default value canonicalizes away.
  EXPECT_EQ(canonical_scheduler_spec("laps:services=4"), "laps");
  EXPECT_EQ(canonical_scheduler_spec("batch:batch=32"), "batch");
}

TEST(RegistryRoundTrip, DurationSuffixesNormalize) {
  // 5 us == 5000 ns; both must canonicalize to the same spec and config.
  const std::string a = canonical_scheduler_spec("laps:idle_th=5us");
  const std::string b = canonical_scheduler_spec("laps:idle_th=5000ns");
  const std::string c = canonical_scheduler_spec("laps:idle_th=5000");
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
  check_round_trip("laps:idle_th=5us");
}

/// One fuzzable parameter: key plus a generator kind with a safe range.
struct FuzzKey {
  const char* key;
  enum Kind { kSize, kDouble01, kBool, kDuration } kind;
  std::uint64_t lo = 1, hi = 64;
};

struct FuzzScheduler {
  const char* name;
  std::vector<FuzzKey> keys;
};

const std::vector<FuzzScheduler>& fuzz_catalog() {
  using K = FuzzKey;
  static const std::vector<FuzzKey> kAfd = {
      {"afc", K::kSize, 2, 64},        {"annex", K::kSize, 64, 512},
      {"promote", K::kSize, 1, 16},    {"sample", K::kDouble01},
      {"aging", K::kSize, 1000, 100000}, {"beat_min", K::kBool},
  };
  static const std::vector<FuzzScheduler> catalog = [] {
    std::vector<FuzzScheduler> c;
    c.push_back({"fcfs", {}});
    c.push_back({"hash", {{"buckets", K::kSize, 16, 1024}}});
    c.push_back({"afs",
                 {{"high_th", K::kSize, 4, 31},
                  {"buckets", K::kSize, 16, 1024},
                  {"cooldown", K::kSize, 1, 5000}}});
    c.push_back({"adaptive",
                 {{"period", K::kSize, 100, 10000},
                  {"slack", K::kDouble01},
                  {"moves", K::kSize, 1, 8},
                  {"buckets", K::kSize, 16, 1024}}});
    FuzzScheduler combined{"adaptive-afd",
                           {{"period", K::kSize, 100, 10000},
                            {"slack", K::kDouble01},
                            {"moves", K::kSize, 1, 8},
                            {"buckets", K::kSize, 16, 1024},
                            {"high_th", K::kSize, 4, 31},
                            {"pins", K::kSize, 16, 4096}}};
    combined.keys.insert(combined.keys.end(), kAfd.begin(), kAfd.end());
    c.push_back(std::move(combined));
    c.push_back({"batch", {{"batch", K::kSize, 1, 64}}});
    c.push_back({"oracle",
                 {{"k", K::kSize, 1, 32},
                  {"high_th", K::kSize, 4, 31},
                  {"refresh", K::kSize, 128, 65536},
                  {"buckets", K::kSize, 16, 1024}}});
    FuzzScheduler laps{"laps",
                       {{"services", K::kSize, 1, 4},
                        {"high_th", K::kSize, 4, 31},
                        {"idle_th", K::kDuration},
                        {"pins", K::kSize, 16, 4096},
                        {"min_cores", K::kSize, 1, 2},
                        {"power", K::kBool},
                        {"sleep_after", K::kDuration},
                        {"wake_wm", K::kSize, 1, 32},
                        {"consolidate_window", K::kSize, 128, 65536},
                        {"consolidate_wm", K::kSize, 1, 16},
                        {"consolidate_backoff", K::kDuration},
                        {"entries", K::kSize, 16, 128}}};
    laps.keys.insert(laps.keys.end(), kAfd.begin(), kAfd.end());
    c.push_back(std::move(laps));
    FuzzScheduler hm{"hash-migrate",
                     {{"buckets", K::kSize, 16, 1024},
                      {"high_th", K::kSize, 4, 31},
                      {"pins", K::kSize, 16, 4096}}};
    hm.keys.insert(hm.keys.end(), kAfd.begin(), kAfd.end());
    c.push_back(std::move(hm));
    c.push_back({"afs-power",
                 {{"high_th", K::kSize, 4, 31},
                  {"buckets", K::kSize, 16, 1024},
                  {"cooldown", K::kSize, 1, 5000},
                  {"idle_th", K::kDuration},
                  {"wake_wm", K::kSize, 1, 32},
                  {"sleep_after", K::kDuration},
                  {"consolidate_window", K::kSize, 128, 65536},
                  {"consolidate_wm", K::kSize, 1, 16},
                  {"consolidate_backoff", K::kDuration},
                  {"min_unparked", K::kSize, 1, 4}}});
    return c;
  }();
  return catalog;
}

std::string random_value(const FuzzKey& k, std::mt19937_64& rng) {
  switch (k.kind) {
    case FuzzKey::kSize: {
      std::uniform_int_distribution<std::uint64_t> d(k.lo, k.hi);
      return std::to_string(d(rng));
    }
    case FuzzKey::kDouble01: {
      static const char* kChoices[] = {"0.125", "0.25", "0.5", "0.75", "1"};
      return kChoices[rng() % 5];
    }
    case FuzzKey::kBool: {
      static const char* kChoices[] = {"1",    "0",   "true", "false",
                                       "on",   "off", "yes",  "no"};
      return kChoices[rng() % 8];
    }
    case FuzzKey::kDuration: {
      static const char* kSuffix[] = {"", "ns", "us", "ms"};
      std::uniform_int_distribution<std::uint64_t> d(1, 100);
      return std::to_string(d(rng)) + kSuffix[rng() % 4];
    }
  }
  return "1";
}

TEST(RegistryRoundTrip, FuzzedSpecs) {
  std::mt19937_64 rng(20250808);
  const auto& catalog = fuzz_catalog();
  for (int iter = 0; iter < 300; ++iter) {
    const FuzzScheduler& fs = catalog[rng() % catalog.size()];
    // A random subset of keys, in catalog order (duplicates are illegal).
    std::string spec = fs.name;
    bool first = true;
    for (const FuzzKey& k : fs.keys) {
      if (rng() % 2 == 0) continue;
      spec += first ? ":" : ",";
      first = false;
      spec += std::string(k.key) + "=" + random_value(k, rng);
    }
    SCOPED_TRACE("iter " + std::to_string(iter));
    const std::string canon = canonical_scheduler_spec(spec);
    EXPECT_EQ(canonical_scheduler_spec(canon), canon) << spec;
    // Full behavioural comparison is too slow for every iteration; sample.
    if (iter % 10 == 0) {
      check_round_trip(spec);
    } else {
      auto a = make_scheduler(spec);
      auto b = make_scheduler(canon);
      EXPECT_EQ(a->name(), b->name()) << spec;
    }
  }
}

// --------------------------------------------- snapshot no-perturbation ---

/// aggressive_snapshot() must be read-only: a scheduler polled between
/// packets must make exactly the decisions of an unpolled twin.
void check_snapshot_is_pure(const std::string& spec) {
  SCOPED_TRACE(spec);
  auto polled = make_scheduler(spec);
  auto control = make_scheduler(spec);
  polled->attach(8);
  control->attach(8);
  FakeView view(8);
  for (int i = 0; i < 4000; ++i) {
    view.now_ += 500;
    for (std::size_t c = 0; c < 8; ++c) {
      view.cores_[c].queue_len = static_cast<std::uint32_t>((i + c) % 40);
    }
    // Heavy repetition so flows actually promote into the AFC.
    const std::uint32_t flow = i % 2 == 0 ? i % 4 : 50u + i % 400;
    const SimPacket pkt = make_packet(flow);
    if (i % 100 == 0) {
      // Two consecutive polls must agree *and* not disturb what follows.
      EXPECT_EQ(polled->aggressive_snapshot(), polled->aggressive_snapshot());
    }
    ASSERT_EQ(polled->schedule(pkt, view), control->schedule(pkt, view))
        << "packet " << i << ": polling aggressive_snapshot() changed a "
        << "scheduling decision";
  }
  EXPECT_EQ(polled->aggressive_snapshot(), control->aggressive_snapshot());
  EXPECT_EQ(polled->extra_stats(), control->extra_stats());
}

TEST(AggressiveSnapshot, DoesNotPerturbDetectorState) {
  for (const char* spec :
       {"laps:services=1", "adaptive-afd", "hash-migrate"}) {
    check_snapshot_is_pure(spec);
  }
  // Detector-less schedulers report an empty set.
  EXPECT_TRUE(make_scheduler("fcfs")->aggressive_snapshot().empty());
  EXPECT_TRUE(make_scheduler("hash")->aggressive_snapshot().empty());
}

// =================================================== dispatcher registry ===
// The --dispatch grammar shares exp/spec_lang.h with the scheduler specs;
// these pin the dispatcher side of the fail-fast and round-trip contracts.

std::string dispatch_error_of(const std::string& spec) {
  try {
    make_dispatcher(spec);
    return "";
  } catch (const DispatcherSpecError& e) {
    return e.what();
  }
}

TEST(DispatcherSpecErrors, UnknownDispatcherListsEveryValidName) {
  const std::string msg = dispatch_error_of("bogus");
  ASSERT_FALSE(msg.empty()) << "unknown dispatcher must throw";
  EXPECT_NE(msg.find("bogus"), std::string::npos) << msg;
  for (const std::string& name : dispatcher_names()) {
    EXPECT_NE(msg.find(name), std::string::npos)
        << "error must list valid dispatcher '" << name << "': " << msg;
  }
}

TEST(DispatcherSpecErrors, UnknownParameterListsValidKeys) {
  const std::string msg = dispatch_error_of("affinity:zzz=1");
  ASSERT_FALSE(msg.empty());
  EXPECT_NE(msg.find("zzz"), std::string::npos) << msg;
  for (const char* key : {"th", "drain"}) {
    EXPECT_NE(msg.find(key), std::string::npos)
        << "error must list valid key '" << key << "': " << msg;
  }
}

TEST(DispatcherSpecErrors, MalformedSpecsAllThrow) {
  for (const char* spec : {
           "",                   // empty spec
           ":shard=1",           // empty dispatcher name
           "fdir:",              // empty parameter list
           "fdir:slots",         // parameter without '='
           "fdir:=5",            // empty key
           "fdir:slots=",        // empty value
           "fdir:slots=abc",     // non-numeric size
           "fdir:slots=0",       // zero-slot table
           "fdir:slots=64,slots=32",  // duplicate key
           "affinity:drain=maybe",    // non-boolean
           "rss:slots=64",       // parameter on a parameterless dispatcher
       }) {
    EXPECT_THROW(make_dispatcher(spec), DispatcherSpecError) << spec;
    EXPECT_THROW(canonical_dispatcher_spec(spec), DispatcherSpecError)
        << spec;
  }
}

TEST(DispatcherSpecErrors, ListRejectsEmptySegments) {
  EXPECT_THROW(parse_dispatcher_list("rss;;rr"), DispatcherSpecError);
  EXPECT_THROW(parse_dispatcher_list(";rss"), DispatcherSpecError);
  EXPECT_TRUE(parse_dispatcher_list("").empty());
  const auto specs = parse_dispatcher_list("rss;fdir:slots=512");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].display, "RSS");
  EXPECT_EQ(specs[1].display, "FlowDirector");
}

TEST(DispatcherSpecErrors, HelpMentionsEveryDispatcher) {
  const std::string help = dispatcher_spec_help();
  for (const std::string& name : dispatcher_names()) {
    EXPECT_NE(help.find(name), std::string::npos) << name;
  }
}

/// Drives `n` synthetic packets (a skewed flow population, drifting shard
/// loads, periodic completion feedback) through `d` and returns the pick
/// sequence — the dispatcher-side analogue of decisions() above.
std::vector<ShardId> dispatch_decisions(Dispatcher& d, std::size_t shards,
                                        int n) {
  d.attach(shards);
  std::vector<ShardGauge> gauges(shards);
  ClusterView view;
  view.shards = {gauges.data(), gauges.size()};
  std::vector<ShardId> picks;
  std::vector<std::uint32_t> completed;
  picks.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    view.now = static_cast<TimeNs>(i) * 500;
    for (std::size_t s = 0; s < shards; ++s) {
      gauges[s].queue_len = static_cast<std::uint32_t>((i + 7 * s) % 40);
    }
    GeneratedPacket pkt;
    pkt.time = view.now;
    pkt.gflow = i % 2 == 0 ? i % 4 : 50u + i % 400;
    pkt.record.tuple.src_ip = 0x0A000000u + pkt.gflow;
    pkt.record.tuple.dst_ip =
        static_cast<std::uint32_t>(mix64(pkt.gflow) >> 32) | 1u;
    pkt.record.tuple.src_port =
        static_cast<std::uint16_t>(1024 + pkt.gflow % 60000);
    pkt.record.tuple.dst_port = 80;
    pkt.record.tuple.protocol = 6;
    const ShardId pick = d.pick(pkt, view);
    picks.push_back(pick);
    ++gauges[pick].dispatched;
    completed.push_back(pkt.gflow);
    if (i % 16 == 15) {
      // Barrier: the oldest packets complete on whichever shard has them.
      for (std::size_t s = 0; s < shards; ++s) {
        gauges[s].delivered = gauges[s].dispatched -
                              std::min<std::uint64_t>(gauges[s].dispatched,
                                                      2 + s);
      }
      d.on_sync(view, {completed.data(), completed.size()});
      completed.clear();
    }
  }
  return picks;
}

/// A spec and its canonical form must behave identically, not just parse.
void check_dispatcher_round_trip(const std::string& spec) {
  SCOPED_TRACE(spec);
  const std::string canon = canonical_dispatcher_spec(spec);
  EXPECT_EQ(canonical_dispatcher_spec(canon), canon) << spec;
  auto a = make_dispatcher(spec);
  auto b = make_dispatcher(canon);
  EXPECT_EQ(a->name(), b->name());
  EXPECT_EQ(dispatch_decisions(*a, 4, 2000), dispatch_decisions(*b, 4, 2000));
  EXPECT_EQ(a->extra_stats(), b->extra_stats());
}

TEST(DispatcherRoundTrip, HandWrittenSpecs) {
  for (const char* spec : {
           "pass", "pass:shard=0", "pass:shard=2", "rr", "rss", "fdir",
           "fdir:slots=4096", "fdir:slots=64", "affinity",
           "affinity:th=32,drain=1", "affinity:th=8,drain=0",
           "affinity:drain=off", "load", "load:th=32", "load:th=1",
       }) {
    check_dispatcher_round_trip(spec);
  }
  // Default-valued parameters canonicalize away entirely.
  EXPECT_EQ(canonical_dispatcher_spec("pass:shard=0"), "pass");
  EXPECT_EQ(canonical_dispatcher_spec("fdir:slots=4096"), "fdir");
  EXPECT_EQ(canonical_dispatcher_spec("affinity:th=32,drain=true"),
            "affinity");
  EXPECT_EQ(canonical_dispatcher_spec("load:th=8"), "load:th=8");
}

TEST(DispatcherRoundTrip, FuzzedSpecs) {
  const auto u64_val = [](std::uint64_t lo, std::uint64_t hi) {
    return [lo, hi](std::mt19937_64& rng) {
      std::uniform_int_distribution<std::uint64_t> d(lo, hi);
      return std::to_string(d(rng));
    };
  };
  const auto bool_val = [](std::mt19937_64& rng) {
    static const char* kChoices[] = {"1",  "0",   "true", "false",
                                     "on", "off", "yes",  "no"};
    return std::string(kChoices[rng() % 8]);
  };
  struct FuzzEntry {
    const char* name;
    std::vector<std::pair<const char*,
                          std::function<std::string(std::mt19937_64&)>>>
        keys;
  };
  const std::vector<FuzzEntry> catalog = {
      {"pass", {{"shard", u64_val(0, 3)}}},
      {"rr", {}},
      {"rss", {}},
      {"fdir", {{"slots", u64_val(1, 512)}}},
      {"affinity", {{"th", u64_val(0, 128)}, {"drain", bool_val}}},
      {"load", {{"th", u64_val(0, 128)}}},
  };
  std::mt19937_64 rng(20260808);
  for (int iter = 0; iter < 300; ++iter) {
    const FuzzEntry& fe = catalog[rng() % catalog.size()];
    std::string spec = fe.name;
    bool first = true;
    for (const auto& [key, value] : fe.keys) {
      if (rng() % 2 == 0) continue;
      spec += first ? ":" : ",";
      first = false;
      spec += std::string(key) + "=" + value(rng);
    }
    SCOPED_TRACE("iter " + std::to_string(iter));
    const std::string canon = canonical_dispatcher_spec(spec);
    EXPECT_EQ(canonical_dispatcher_spec(canon), canon) << spec;
    // Full behavioural comparison is cheap for dispatchers; sample anyway
    // to keep the fuzz under a second.
    if (iter % 5 == 0) {
      check_dispatcher_round_trip(spec);
    } else {
      auto a = make_dispatcher(spec);
      auto b = make_dispatcher(canon);
      EXPECT_EQ(a->name(), b->name()) << spec;
    }
  }
}

}  // namespace
}  // namespace laps
