// Tests for the resilient experiment runner: journal codec exactness,
// durable record/restore, header and corruption handling, watchdog
// timeouts, retry/backoff classification, runner chaos determinism — and
// the two differential proofs the tentpole rests on:
//
//  * SigtermMidGridThenResumeIsByteIdentical — a grid stopped by SIGTERM
//    and resumed from its journal produces byte-identical artifacts
//    (report JSON and per-cell flow-audit files) to an uninterrupted run,
//  * SigkillChildMidGridThenResumeIsByteIdentical — same proof across a
//    real process boundary: a fork()ed child is SIGKILLed mid-grid (no
//    handlers, no cleanup) and the parent resumes from what the journal
//    durably recorded.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "baselines/fcfs.h"
#include "baselines/static_hash.h"
#include "exp/experiment.h"
#include "exp/harness.h"
#include "exp/journal.h"
#include "exp/trace_store.h"
#include "exp/watchdog.h"
#include "sim/flow_audit.h"
#include "sim/probe.h"
#include "sim/report_json.h"
#include "sim/runner.h"
#include "util/histogram.h"

namespace laps {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() /
                       ("laps_resilience_" + tag + "_" +
                        std::to_string(static_cast<long>(::getpid())));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Deterministic synthetic report: cheap stand-in for a simulation that
/// still exercises every journal-encoded field (strings, counters, service
/// arrays, doubles, the histogram, the extra map).
SimReport fake_report(const std::string& scenario, const std::string& sched,
                      std::uint64_t seed) {
  SimReport r;
  r.scenario = scenario;
  r.scheduler = sched;
  r.sim_time = 4'000'000 + static_cast<TimeNs>(seed % 997);
  r.offered = 1000 + seed % 131;
  r.offered_by_service[0] = r.offered - seed % 7;
  r.offered_by_service[1] = seed % 7;
  r.dropped = seed % 17;
  r.dropped_by_service[0] = r.dropped;
  r.delivered = r.offered - r.dropped;
  r.out_of_order = seed % 29;
  r.flow_migrations = seed % 41;
  r.fm_penalties = seed % 37;
  r.cold_cache_events = seed % 53;
  r.mean_core_utilization = 1.0 / (1.0 + static_cast<double>(seed % 11));
  std::uint64_t x = seed * 2654435761u + 1;
  for (int i = 0; i < 200; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    r.latency_ns.record(static_cast<std::int64_t>(x % 5'000'000));
  }
  r.extra["afc_evictions"] = static_cast<double>(seed % 19);
  r.extra["zeta"] = 0.1 + static_cast<double>(seed % 3);
  return r;
}

/// Grid of `cells` fake-report jobs, each sleeping `sleep_ms` (to widen
/// kill windows) — reports depend only on (scenario, scheduler, seed).
ExperimentPlan fake_plan(std::size_t cells, std::uint64_t plan_seed,
                         int sleep_ms = 0) {
  ExperimentPlan plan(plan_seed);
  for (std::size_t i = 0; i < cells; ++i) {
    const std::string scenario = "scen" + std::to_string(i % 3);
    const std::string sched = i % 2 == 0 ? "A" : "B";
    const std::uint64_t seed = ExperimentPlan::derive_seed(plan_seed, i);
    plan.add(scenario, sched, seed, [=]() -> SimReport {
      if (sleep_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
      return fake_report(scenario, sched, seed);
    });
  }
  return plan;
}

// ------------------------------------------------------- journal codec ---

TEST(JournalCodec, ReportRoundTripsToByteIdenticalJson) {
  for (std::uint64_t seed : {1ULL, 42ULL, 9001ULL}) {
    const SimReport r = fake_report("auck1", "LAPS", seed);
    const SimReport back =
        decode_report(encode_report(r), "test-journal", 1);
    EXPECT_EQ(report_to_json(r), report_to_json(back)) << "seed " << seed;
    EXPECT_EQ(back.latency_ns.buckets(), r.latency_ns.buckets());
    EXPECT_EQ(back.latency_ns.quantile(0.999), r.latency_ns.quantile(0.999));
  }
}

TEST(JournalCodec, EmptyReportRoundTrips) {
  const SimReport empty;
  EXPECT_EQ(report_to_json(decode_report(encode_report(empty), "j", 1)),
            report_to_json(empty));
}

TEST(JournalCodec, GarbagePayloadThrowsJournalError) {
  EXPECT_THROW(decode_report("short", "j", 3), JournalError);
  EXPECT_THROW(decode_report(std::string(8, '\xff'), "j", 3), JournalError);
}

TEST(HistogramRestore, ReproducesExportedStateExactly) {
  Histogram h;
  std::uint64_t x = 12345;
  for (int i = 0; i < 10'000; ++i) {
    x = x * 6364136223846793005ULL + 1;
    h.record(static_cast<std::int64_t>(x % 1'000'000'000));
  }
  const Histogram back = Histogram::restore(h.buckets(), h.count(), h.sum(),
                                            h.max());
  EXPECT_EQ(back.buckets(), h.buckets());
  EXPECT_EQ(back.count(), h.count());
  EXPECT_EQ(back.sum(), h.sum());
  EXPECT_EQ(back.max(), h.max());
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(back.quantile(q), h.quantile(q)) << "q=" << q;
  }
}

TEST(HistogramRestore, RejectsInvalidExports) {
  Histogram h;
  h.record(100);
  auto buckets = h.buckets();
  EXPECT_THROW(Histogram::restore(buckets, 2, 100, 100),
               std::invalid_argument);  // count mismatch
  buckets[0].upper_bound += 1;          // not a real bucket bound
  EXPECT_THROW(Histogram::restore(buckets, 1, 100, 100),
               std::invalid_argument);
}

// ---------------------------------------------------- journal file layer ---

TEST(Journal, RecordRestoreAcrossReopen) {
  const std::string dir = temp_dir("journal_reopen");
  ExperimentJournal::Config cfg{dir + "/grid.journal", 42, 7, 3};
  const std::uint64_t fp0 = 111, fp2 = 222;
  const SimReport r0 = fake_report("a", "A", 1);
  const SimReport r2 = fake_report("b", "B", 2);
  {
    ExperimentJournal journal(cfg, /*resume=*/false);
    journal.record(0, fp0, r0);
    journal.record(2, fp2, r2);
  }
  ExperimentJournal journal(cfg, /*resume=*/true);
  EXPECT_EQ(journal.loaded(), 2u);
  ASSERT_NE(journal.restore(0, fp0), nullptr);
  EXPECT_EQ(report_to_json(*journal.restore(0, fp0)), report_to_json(r0));
  EXPECT_EQ(report_to_json(*journal.restore(2, fp2)), report_to_json(r2));
  EXPECT_EQ(journal.restore(1, 333), nullptr);   // never recorded
  EXPECT_EQ(journal.restore(0, 999), nullptr);   // stale fingerprint
  fs::remove_all(dir);
}

TEST(Journal, FreshOpenDiscardsAndHeaderMismatchRefuses) {
  const std::string dir = temp_dir("journal_header");
  ExperimentJournal::Config cfg{dir + "/grid.journal", 42, 7, 3};
  {
    ExperimentJournal journal(cfg, false);
    journal.record(0, 1, fake_report("a", "A", 1));
  }
  // resume=false replaces the file: nothing to restore afterwards.
  {
    ExperimentJournal journal(cfg, false);
    EXPECT_EQ(journal.loaded(), 0u);
  }
  {
    ExperimentJournal journal(cfg, false);
    journal.record(0, 1, fake_report("a", "A", 1));
  }
  // A journal recorded under different options must refuse to resume:
  // plan seed, grid size, and salt are all load-bearing.
  for (auto bad : {ExperimentJournal::Config{cfg.path, 43, 7, 3},
                   ExperimentJournal::Config{cfg.path, 42, 8, 3},
                   ExperimentJournal::Config{cfg.path, 42, 7, 4}}) {
    EXPECT_THROW(ExperimentJournal(bad, true), JournalError);
  }
  // Missing file under resume is a clean empty journal.
  ExperimentJournal::Config missing{dir + "/none.journal", 42, 7, 3};
  ExperimentJournal journal(missing, true);
  EXPECT_EQ(journal.loaded(), 0u);
  fs::remove_all(dir);
}

TEST(Journal, TornFinalLineDroppedButEarlierCorruptionThrows) {
  const std::string dir = temp_dir("journal_corrupt");
  const std::string path = dir + "/grid.journal";
  ExperimentJournal::Config cfg{path, 42, 7, 4};
  {
    ExperimentJournal journal(cfg, false);
    for (std::size_t i = 0; i < 3; ++i) {
      journal.record(i, 100 + i, fake_report("a", "A", i));
    }
  }
  const std::string intact = read_file(path);

  // A torn final line (the crash-mid-append shape) is dropped; the other
  // records survive.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "J1 00000000000000aa 3 deadbe";  // no CRC, no newline
  }
  {
    ExperimentJournal journal(cfg, true);
    EXPECT_EQ(journal.loaded(), 3u);
    EXPECT_NE(journal.restore(2, 102), nullptr);
  }

  // Corruption anywhere earlier is untrusted state: flip one payload
  // character of the middle record.
  std::string damaged = intact;
  const std::size_t second = damaged.find("\nJ1", damaged.find("\nJ1") + 1);
  ASSERT_NE(second, std::string::npos);
  const std::size_t payload = damaged.find(' ', second + 25);
  ASSERT_NE(payload, std::string::npos);
  damaged[payload + 2] = damaged[payload + 2] == '0' ? '1' : '0';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << damaged;
  }
  EXPECT_THROW(ExperimentJournal(cfg, true), JournalError);
  fs::remove_all(dir);
}

TEST(Journal, FingerprintSeparatesCellsAndConfigs) {
  ExperimentJob job;
  job.scenario = "auck1";
  job.scheduler = "LAPS";
  job.seed = 9;
  const std::uint64_t fp = job_fingerprint(1, 2, 3, job);
  EXPECT_EQ(fp, job_fingerprint(1, 2, 3, job));
  EXPECT_NE(fp, job_fingerprint(1, 2, 4, job));  // position
  EXPECT_NE(fp, job_fingerprint(1, 9, 3, job));  // salt (runner options)
  EXPECT_NE(fp, job_fingerprint(9, 2, 3, job));  // plan seed
  ExperimentJob other = job;
  other.scheduler = "FCFS";
  EXPECT_NE(fp, job_fingerprint(1, 2, 3, other));
}

// ------------------------------------------------- watchdog and retries ---

TEST(ParallelRunner, WatchdogTimesOutHangingCellOthersComplete) {
  ExperimentPlan plan(5);
  plan.add("hang", "X", 0, []() -> SimReport {
    // Cooperative hang: spins until the watchdog cancels the attempt.
    while (true) {
      JobWatchdog::check_cancelled();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (std::size_t i = 1; i < 6; ++i) {
    plan.add("fine", "X", i, [i] { return fake_report("fine", "X", i); });
  }
  RunnerPolicy policy;
  policy.job_timeout = 50 * kMillisecond;
  ParallelRunner runner(2, policy);
  const auto results = runner.run(plan);
  ASSERT_EQ(results.size(), 6u);
  ASSERT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].error->kind, "timeout");
  EXPECT_EQ(results[0].error->attempts, 1u);
  for (std::size_t i = 1; i < 6; ++i) {
    EXPECT_TRUE(results[i].ok()) << i;
  }
  EXPECT_EQ(runner.stats().jobs_failed, 1u);
  EXPECT_GE(runner.stats().jobs_timed_out, 1u);
  EXPECT_NE(grid_exit_code(runner, results), 0);
}

TEST(ParallelRunner, TransientFailuresRetryWithBackoffThenSucceed) {
  auto attempts = std::make_shared<std::atomic<int>>(0);
  ExperimentPlan plan(5);
  plan.add("flaky", "X", 3, [attempts]() -> SimReport {
    if (attempts->fetch_add(1) < 2) {
      throw TransientError("simulated transient failure");
    }
    return fake_report("flaky", "X", 3);
  });
  RunnerPolicy policy;
  policy.job_retries = 3;
  policy.retry_backoff = kMillisecond;
  ParallelRunner runner(1, policy);
  const auto results = runner.run(plan);
  ASSERT_TRUE(results[0].ok());
  EXPECT_EQ(attempts->load(), 3);
  EXPECT_EQ(runner.stats().retries, 2u);
  EXPECT_EQ(runner.stats().jobs_failed, 0u);
  EXPECT_EQ(grid_exit_code(runner, results), 0);
}

TEST(ParallelRunner, DeterministicFailuresAreNeverRetried) {
  auto attempts = std::make_shared<std::atomic<int>>(0);
  ExperimentPlan plan(5);
  plan.add("broken", "X", 0, [attempts]() -> SimReport {
    attempts->fetch_add(1);
    throw std::logic_error("deterministic bug");
  });
  RunnerPolicy policy;
  policy.job_retries = 5;
  policy.retry_backoff = kMillisecond;
  ParallelRunner runner(1, policy);
  const auto results = runner.run(plan);
  ASSERT_FALSE(results[0].ok());
  EXPECT_EQ(results[0].error->kind, "exception");
  EXPECT_EQ(results[0].error->message, "deterministic bug");
  EXPECT_EQ(results[0].error->attempts, 1u);
  EXPECT_EQ(attempts->load(), 1);
  EXPECT_EQ(runner.stats().retries, 0u);
}

TEST(ParallelRunner, ChaosInjectionIsContainedAndDeterministic) {
  // With retries available, every chaos-injected transient failure is
  // absorbed and the artifact equals the chaos-free run's bytes.
  auto artifact_with = [](bool chaos) {
    RunnerPolicy policy;
    policy.job_retries = 8;
    policy.retry_backoff = kMillisecond;
    if (chaos) {
      policy.chaos.enabled = true;
      policy.chaos.seed = 99;
      policy.chaos.fail_prob = 0.4;
    }
    ParallelRunner runner(4, policy);
    const auto results = runner.run(fake_plan(20, 77));
    EXPECT_EQ(runner.stats().jobs_failed, 0u);
    return artifact_json("chaos_test", results);
  };
  EXPECT_EQ(artifact_with(true), artifact_with(false));
}

TEST(ParallelRunner, ChaosHangsRequireAWatchdog) {
  RunnerPolicy policy;
  policy.chaos.enabled = true;
  policy.chaos.hang_prob = 0.5;  // no job_timeout: would hang forever
  EXPECT_THROW(ParallelRunner(1, policy), std::invalid_argument);
}

// ------------------------------------------------ resume differentials ---

/// Real-simulation grid (3 traces x 2 schedulers x 5 seeds = 30 cells);
/// every cell also writes a per-cell flow-audit artifact into `dir` —
/// the per-run observability files the resume proof must reproduce.
ExperimentPlan sim_plan(std::shared_ptr<TraceStore> store,
                        const std::string& dir, std::uint64_t plan_seed) {
  const std::vector<SchedulerSpec> schedulers = {
      {"FCFS", [] { return std::make_unique<FcfsScheduler>(); }},
      {"StaticHash", [] { return std::make_unique<StaticHashScheduler>(); }},
  };
  ExperimentPlan plan(plan_seed);
  plan.add_grid(
      {"auck1", "auck2", "auck3"}, schedulers, plan.replicate_seeds(5),
      [store](const std::string& trace, std::uint64_t seed) {
        ScenarioConfig cfg;
        cfg.name = trace;
        cfg.num_cores = 2;
        cfg.seconds = 0.002;
        cfg.seed = seed;
        ServiceTraffic s;
        s.path = ServicePath::kIpForward;
        s.rate = HoltWintersParams{2.0, 0.0, 0.0, 10.0, 0.0};
        s.trace = store->open(trace);
        cfg.services = {s};
        return cfg;
      },
      [dir](const ScenarioConfig& cfg, Scheduler& scheduler) {
        FlowAuditProbe audit(FlowAuditProbe::Options{8, 16});
        ProbeSet probes;
        probes.add(&audit);
        SimReport report = run_scenario(cfg, scheduler, probes);
        audit.write(dir + "/audit." + cfg.name + "." + scheduler.name() +
                    "." + std::to_string(cfg.seed) + ".json");
        return report;
      });
  return plan;
}

/// Per-cell flow-audit artifacts in `dir`, keyed by filename.
std::vector<std::pair<std::string, std::string>> audit_files(
    const std::string& dir) {
  std::vector<std::pair<std::string, std::string>> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("audit.", 0) == 0) {
      files.emplace_back(name, read_file(entry.path().string()));
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

constexpr std::uint64_t kDifferentialSeed = 20130604;

std::string golden_artifact(const std::string& dir) {
  auto store = std::make_shared<TraceStore>();
  const auto plan = sim_plan(store, dir, kDifferentialSeed);
  ParallelRunner runner(2);
  const auto results = runner.run(plan);
  EXPECT_EQ(grid_exit_code(runner, results), 0);
  return artifact_json("resume_differential", results);
}

TEST(ResumeDifferential, SigtermMidGridThenResumeIsByteIdentical) {
  const std::string golden_dir = temp_dir("sigterm_golden");
  const std::string run_dir = temp_dir("sigterm_run");
  const std::string golden = golden_artifact(golden_dir);

  RunnerPolicy policy;
  policy.journal_path = run_dir + "/grid.journal";
  policy.handle_signals = true;

  // Phase 1: serial run that SIGTERMs itself after cell 7 completes — the
  // handled signal stops the grid after the in-flight cell is journaled.
  {
    auto store = std::make_shared<TraceStore>();
    ExperimentPlan plan = sim_plan(store, run_dir, kDifferentialSeed);
    ExperimentPlan interrupted(plan.plan_seed());
    for (std::size_t i = 0; i < plan.jobs().size(); ++i) {
      const auto& job = plan.jobs()[i];
      auto body = job.run;
      interrupted.add(job.scenario, job.scheduler, job.seed,
                      [i, body]() -> SimReport {
                        SimReport r = body();
                        if (i == 7) ::raise(SIGTERM);
                        return r;
                      });
    }
    RunnerPolicy p1 = policy;
    ParallelRunner runner(1, p1);
    const auto results = runner.run(interrupted);
    EXPECT_EQ(runner.stop_signal(), SIGTERM);
    EXPECT_EQ(grid_abort_code(runner), 128 + SIGTERM);
    // Cells 0..7 ran and were journaled; the rest were never started.
    EXPECT_EQ(runner.stats().interrupted, results.size() - 8);
    for (std::size_t i = 8; i < results.size(); ++i) {
      ASSERT_FALSE(results[i].ok());
      EXPECT_EQ(results[i].error->kind, "interrupted");
    }
  }

  // Phase 2: resume. Journaled cells are replayed, the rest run now; the
  // artifact must equal the uninterrupted run's bytes exactly.
  {
    auto store = std::make_shared<TraceStore>();
    const ExperimentPlan plan = sim_plan(store, run_dir, kDifferentialSeed);
    RunnerPolicy p2 = policy;
    p2.resume = true;
    ParallelRunner runner(4, p2);
    const auto results = runner.run(plan);
    EXPECT_EQ(runner.stop_signal(), 0);
    EXPECT_EQ(runner.stats().restored, 8u);
    EXPECT_EQ(grid_exit_code(runner, results), 0);
    for (std::size_t i = 0; i < 8; ++i) EXPECT_TRUE(results[i].from_journal);
    EXPECT_EQ(artifact_json("resume_differential", results), golden);
  }

  // The per-cell flow-audit artifacts (written by whichever phase ran the
  // cell) must also match the golden run byte-for-byte.
  const auto golden_audits = audit_files(golden_dir);
  ASSERT_EQ(golden_audits.size(), 30u);
  EXPECT_EQ(audit_files(run_dir), golden_audits);

  fs::remove_all(golden_dir);
  fs::remove_all(run_dir);
}

TEST(ResumeDifferential, SigkillChildMidGridThenResumeIsByteIdentical) {
  const std::string golden_dir = temp_dir("sigkill_golden");
  const std::string run_dir = temp_dir("sigkill_run");
  const std::string golden = golden_artifact(golden_dir);
  const std::string journal_path = run_dir + "/grid.journal";

  RunnerPolicy policy;
  policy.journal_path = journal_path;

  // Child: run the grid serially with the journal, then exit. It gets
  // SIGKILLed mid-grid — no handlers run, no destructors, no flushes; only
  // what ExperimentJournal::record fsync'd survives.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0) << "fork failed";
  if (child == 0) {
    auto store = std::make_shared<TraceStore>();
    const ExperimentPlan plan = sim_plan(store, run_dir, kDifferentialSeed);
    ParallelRunner runner(1, policy);
    runner.run(plan);
    ::_exit(0);
  }

  // Parent: wait until the journal proves >= 5 cells completed, then kill.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  std::size_t records = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    if (fs::exists(journal_path)) {
      std::ifstream in(journal_path);
      records = 0;
      std::string line;
      while (std::getline(in, line)) {
        if (line.rfind("J1 ", 0) == 0) ++records;
      }
      if (records >= 5) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(records, 5u) << "child never journaled enough cells";
  ::kill(child, SIGKILL);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  const bool killed = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
  const bool finished = WIFEXITED(status) && WEXITSTATUS(status) == 0;
  ASSERT_TRUE(killed || finished) << "child died unexpectedly: " << status;

  // Parent resumes from whatever survived the kill.
  auto store = std::make_shared<TraceStore>();
  const ExperimentPlan plan = sim_plan(store, run_dir, kDifferentialSeed);
  RunnerPolicy resume_policy = policy;
  resume_policy.resume = true;
  ParallelRunner runner(4, resume_policy);
  const auto results = runner.run(plan);
  EXPECT_GE(runner.stats().restored, 5u);
  EXPECT_EQ(grid_exit_code(runner, results), 0);
  EXPECT_EQ(artifact_json("resume_differential", results), golden);

  const auto golden_audits = audit_files(golden_dir);
  ASSERT_EQ(golden_audits.size(), 30u);
  EXPECT_EQ(audit_files(run_dir), golden_audits);

  fs::remove_all(golden_dir);
  fs::remove_all(run_dir);
}

TEST(ResumeDifferential, JournalOffFaultFreeRunIsUnchanged) {
  // The no-resilience-flags path must stay bit-identical to the historical
  // runner: policy default vs an explicit journal produce the same bytes.
  const std::string dir = temp_dir("journal_off");
  auto run_with = [&](RunnerPolicy policy) {
    ParallelRunner runner(2, policy);
    return artifact_json("baseline", runner.run(fake_plan(12, 5)));
  };
  RunnerPolicy with_journal;
  with_journal.journal_path = dir + "/grid.journal";
  EXPECT_EQ(run_with(RunnerPolicy{}), run_with(with_journal));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace laps
