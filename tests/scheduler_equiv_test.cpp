// Differential proof for the scheduler-layer policy/mechanism split: every
// pre-existing scheduler must produce *bit-identical* results before and
// after the refactor. The proof is a golden file captured on the
// pre-refactor tree (tests/golden/scheduler_equiv.tsv): for each
// (scheduler, scenario, fault-plan) cell of a randomized grid the test runs
// the simulation with a FlowAuditProbe and an always-dump
// FlightRecorderProbe attached and asserts that
//
//   - the SimReport JSON,
//   - the flow-audit table JSON (exact per-flow counters), and
//   - the flight-recorder event sequence JSON
//
// hash to the CRC32s recorded in the golden file. Fault cells use
// random_fault_plan schedules, so drain/remap, rehash, and emergency-grant
// paths are all pinned, exactly as PR 5's wheel-vs-heap differential pinned
// the completion queue.
//
// Regenerating (only legitimate when a PR *intends* to change scheduler
// behaviour): run the binary with LAPS_REGEN_GOLDEN=1; the Regenerate test
// rewrites the golden file and every comparison case then passes against
// the fresh capture. A regenerated golden must be called out in review.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "baselines/adaptive_hash.h"
#include "baselines/afs.h"
#include "baselines/batch.h"
#include "baselines/fcfs.h"
#include "baselines/oracle_topk.h"
#include "baselines/static_hash.h"
#include "core/laps.h"
#include "sim/fault.h"
#include "sim/flight_recorder.h"
#include "sim/flow_audit.h"
#include "sim/report_json.h"
#include "sim/scenarios.h"
#include "util/crc.h"

#ifndef LAPS_SOURCE_DIR
#error "LAPS_SOURCE_DIR must be defined to locate tests/golden/"
#endif

namespace laps {
namespace {

const char* kGoldenPath = LAPS_SOURCE_DIR "/tests/golden/scheduler_equiv.tsv";

// ------------------------------------------------------------- the grid ---

enum class Kind {
  kFcfs,
  kStaticHash,
  kAfs,
  kAdaptive,
  kCombined,
  kBatch,
  kOracle,
  kLaps,
  kLapsGated,
};

constexpr Kind kAllKinds[] = {
    Kind::kFcfs,     Kind::kStaticHash, Kind::kAfs,
    Kind::kAdaptive, Kind::kCombined,   Kind::kBatch,
    Kind::kOracle,   Kind::kLaps,       Kind::kLapsGated,
};

std::string kind_label(Kind kind) {
  switch (kind) {
    case Kind::kFcfs: return "FCFS";
    case Kind::kStaticHash: return "StaticHash";
    case Kind::kAfs: return "AFS";
    case Kind::kAdaptive: return "AdaptiveHash";
    case Kind::kCombined: return "Adaptive+AFD";
    case Kind::kBatch: return "Batch";
    case Kind::kOracle: return "OracleTop16";
    case Kind::kLaps: return "LAPS";
    case Kind::kLapsGated: return "LAPS+power";
  }
  return "?";
}

std::unique_ptr<Scheduler> make_kind(Kind kind, std::size_t num_services) {
  switch (kind) {
    case Kind::kFcfs: return std::make_unique<FcfsScheduler>();
    case Kind::kStaticHash: return std::make_unique<StaticHashScheduler>();
    case Kind::kAfs: return std::make_unique<AfsScheduler>();
    case Kind::kAdaptive: return std::make_unique<AdaptiveHashScheduler>();
    case Kind::kCombined: return std::make_unique<CombinedAdaptiveScheduler>();
    case Kind::kBatch: return std::make_unique<BatchScheduler>();
    case Kind::kOracle: return std::make_unique<OracleTopKScheduler>(16);
    case Kind::kLaps: {
      LapsConfig cfg;
      cfg.num_services = num_services;
      return std::make_unique<LapsScheduler>(cfg);
    }
    case Kind::kLapsGated: {
      LapsConfig cfg;
      cfg.num_services = num_services;
      cfg.power_gating = true;
      return std::make_unique<LapsScheduler>(cfg);
    }
  }
  return nullptr;
}

struct Cell {
  Kind kind;
  std::string scenario;  // "T1", "T5", or "single:caida1"
  bool faulted;
};

std::vector<Cell> grid() {
  std::vector<Cell> cells;
  for (Kind kind : kAllKinds) {
    for (const char* scenario : {"T1", "T5", "single:caida1"}) {
      for (bool faulted : {false, true}) {
        cells.push_back({kind, scenario, faulted});
      }
    }
  }
  return cells;
}

std::string cell_key(const Cell& cell) {
  return kind_label(cell.kind) + "|" + cell.scenario + "|" +
         (cell.faulted ? "faults" : "clean");
}

// ----------------------------------------------------------- one capture ---

struct Capture {
  std::uint32_t report_crc = 0;
  std::uint32_t audit_crc = 0;
  std::uint32_t flight_crc = 0;
  std::uint64_t offered = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t out_of_order = 0;
  std::uint64_t migrations = 0;
};

std::uint32_t crc_of(const std::string& s) {
  return crc32_ieee({reinterpret_cast<const std::uint8_t*>(s.data()),
                     s.size()});
}

Capture run_cell(const Cell& cell) {
  ScenarioOptions options;
  options.seconds = 0.01;
  options.num_cores = 16;
  // Seed derived from the cell so every cell sees distinct traffic and a
  // distinct fault schedule.
  options.seed = mix64(crc_of(cell_key(cell)));

  ScenarioConfig config;
  std::size_t num_services = kNumServices;
  if (cell.scenario.rfind("single:", 0) == 0) {
    num_services = 1;
    config = make_single_service_scenario(cell.scenario.substr(7), options);
  } else {
    config = make_paper_scenario(cell.scenario, options);
  }
  if (cell.faulted) {
    RandomFaultParams params;
    params.horizon = from_seconds(options.seconds);
    params.num_cores = options.num_cores;
    config.faults = std::make_shared<const FaultPlan>(
        random_fault_plan(options.seed, params));
  }

  auto scheduler = make_kind(cell.kind, num_services);

  FlowAuditProbe audit(FlowAuditProbe::Options{16, 0});
  FlightRecorderConfig flight_cfg;
  flight_cfg.always_dump = true;
  FlightRecorderProbe flight(flight_cfg);
  ProbeSet extra;
  extra.add(&audit);
  extra.add(&flight);

  const SimReport report = run_scenario(config, *scheduler, extra);

  Capture cap;
  cap.report_crc = crc_of(report_to_json(report));
  cap.audit_crc = crc_of(audit.to_json());
  cap.flight_crc = crc_of(flight.to_json());
  cap.offered = report.offered;
  cap.delivered = report.delivered;
  cap.dropped = report.dropped;
  cap.out_of_order = report.out_of_order;
  cap.migrations = report.flow_migrations;
  return cap;
}

// ----------------------------------------------------------- golden file ---

std::string capture_line(const std::string& key, const Capture& c) {
  std::ostringstream out;
  out << key << '\t' << c.report_crc << '\t' << c.audit_crc << '\t'
      << c.flight_crc << '\t' << c.offered << '\t' << c.delivered << '\t'
      << c.dropped << '\t' << c.out_of_order << '\t' << c.migrations;
  return out.str();
}

std::map<std::string, std::string> load_golden() {
  std::ifstream in(kGoldenPath);
  std::map<std::string, std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t tab = line.find('\t');
    if (tab == std::string::npos) continue;
    lines[line.substr(0, tab)] = line;
  }
  return lines;
}

bool regen_requested() {
  const char* env = std::getenv("LAPS_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// Rewrites the golden file from the current tree. Skipped unless
// LAPS_REGEN_GOLDEN=1: regeneration means "I intend to change scheduler
// behaviour", never a routine test run.
TEST(SchedulerEquivGolden, Regenerate) {
  if (!regen_requested()) {
    GTEST_SKIP() << "set LAPS_REGEN_GOLDEN=1 to rewrite " << kGoldenPath;
  }
  std::ofstream out(kGoldenPath, std::ios::trunc);
  ASSERT_TRUE(out) << "cannot write " << kGoldenPath;
  out << "# scheduler-equivalence goldens: key, CRC32(report JSON), "
         "CRC32(flow-audit JSON), CRC32(flight-recorder JSON), offered, "
         "delivered, dropped, ooo, migrations\n"
      << "# regenerate with: LAPS_REGEN_GOLDEN=1 ./scheduler_equiv_test "
         "--gtest_filter='SchedulerEquivGolden.Regenerate'\n";
  for (const Cell& cell : grid()) {
    out << capture_line(cell_key(cell), run_cell(cell)) << "\n";
  }
  ASSERT_TRUE(out.good());
}

// ------------------------------------------------------- comparison cases ---

class SchedulerEquiv : public ::testing::TestWithParam<Cell> {};

TEST_P(SchedulerEquiv, BitIdenticalToGolden) {
  if (regen_requested()) {
    GTEST_SKIP() << "regeneration run; comparisons are meaningless";
  }
  const Cell& cell = GetParam();
  const auto golden = load_golden();
  const std::string key = cell_key(cell);
  const auto it = golden.find(key);
  ASSERT_NE(it, golden.end())
      << "no golden entry for '" << key << "' in " << kGoldenPath
      << " — regenerate with LAPS_REGEN_GOLDEN=1 (and justify it in review)";
  EXPECT_EQ(it->second, capture_line(key, run_cell(cell)))
      << "scheduler behaviour diverged from the pre-refactor golden for '"
      << key << "'. A CRC mismatch in column 2/3/4 means the report / "
      << "flow-audit / flight-recorder bytes changed.";
}

std::string cell_test_name(const ::testing::TestParamInfo<Cell>& info) {
  std::string name = cell_key(info.param);
  for (char& c : name) {
    if (!(std::isalnum(static_cast<unsigned char>(c)))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Grid, SchedulerEquiv, ::testing::ValuesIn(grid()),
                         cell_test_name);

}  // namespace
}  // namespace laps
