// Tests for src/sim: the event heap, the NPU discrete-event model (drops,
// penalties, reordering, conservation), and the report arithmetic.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/event_heap.h"
#include "sim/npu.h"
#include "sim/reorder_buffer.h"
#include "sim/runner.h"
#include "sim/scheduler.h"
#include "trace/synthetic.h"
#include "traffic/generator.h"

namespace laps {
namespace {

// -------------------------------------------------------------- EventHeap ---

struct Ev {
  TimeNs time;
  int tag;
};

TEST(EventHeap, PopsInTimeOrder) {
  EventHeap<Ev> heap;
  heap.push({30, 1});
  heap.push({10, 2});
  heap.push({20, 3});
  EXPECT_EQ(heap.pop().tag, 2);
  EXPECT_EQ(heap.pop().tag, 3);
  EXPECT_EQ(heap.pop().tag, 1);
  EXPECT_TRUE(heap.empty());
}

TEST(EventHeap, TiesPopInInsertionOrder) {
  EventHeap<Ev> heap;
  for (int i = 0; i < 20; ++i) heap.push({100, i});
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(heap.pop().tag, i) << "stable FIFO for equal timestamps";
  }
}

TEST(EventHeap, TopDoesNotRemove) {
  EventHeap<Ev> heap;
  heap.push({5, 7});
  EXPECT_EQ(heap.top().tag, 7);
  EXPECT_EQ(heap.top_time(), 5);
  EXPECT_EQ(heap.size(), 1u);
}

TEST(EventHeap, EmptyOperationsThrow) {
  EventHeap<Ev> heap;
  EXPECT_THROW(heap.pop(), std::logic_error);
  EXPECT_THROW(heap.top(), std::logic_error);
  EXPECT_THROW(heap.top_time(), std::logic_error);
}

TEST(EventHeap, RandomizedOrderProperty) {
  EventHeap<Ev> heap;
  Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    heap.push({static_cast<TimeNs>(rng.below(10'000)), i});
  }
  TimeNs prev = -1;
  while (!heap.empty()) {
    const Ev e = heap.pop();
    ASSERT_GE(e.time, prev);
    prev = e.time;
  }
}

TEST(EventHeap, ClearEmpties) {
  EventHeap<Ev> heap;
  heap.push({1, 1});
  heap.clear();
  EXPECT_TRUE(heap.empty());
}

// ------------------------------------------------------------------- NPU ---

/// Sends every packet to a fixed core — lets tests aim traffic precisely.
class PinnedScheduler final : public Scheduler {
 public:
  explicit PinnedScheduler(CoreId core) : core_(core) {}
  void attach(std::size_t) override {}
  CoreId schedule(const SimPacket&, const NpuView&) override { return core_; }
  std::string name() const override { return "Pinned"; }

 private:
  CoreId core_;
};

/// Alternates between two cores per packet — guarantees flow migrations.
class PingPongScheduler final : public Scheduler {
 public:
  void attach(std::size_t) override {}
  CoreId schedule(const SimPacket&, const NpuView&) override {
    return (flip_ = !flip_) ? 0 : 1;
  }
  std::string name() const override { return "PingPong"; }

 private:
  bool flip_ = false;
};

ScenarioConfig tiny_scenario(double mpps, double seconds,
                             std::size_t cores = 2,
                             ServicePath path = ServicePath::kIpForward,
                             std::size_t flows = 50) {
  ScenarioConfig cfg;
  cfg.name = "tiny";
  cfg.num_cores = cores;
  cfg.seconds = seconds;
  cfg.seed = 1234;
  ServiceTraffic s;
  s.path = path;
  s.rate = HoltWintersParams{mpps, 0.0, 0.0, 10.0, 0.0};
  SyntheticTraceSpec spec;
  spec.num_flows = flows;
  spec.seed = 77;
  spec.size_bytes = {64};
  spec.size_weights = {1.0};
  s.trace = std::make_shared<SyntheticTrace>(spec);
  cfg.services = {s};
  return cfg;
}

TEST(Npu, RejectsBadConfig) {
  PinnedScheduler sched(0);
  NpuConfig cfg;
  cfg.num_cores = 0;
  EXPECT_THROW(Npu(cfg, sched), std::invalid_argument);
  cfg.num_cores = 2;
  cfg.queue_capacity = 0;
  EXPECT_THROW(Npu(cfg, sched), std::invalid_argument);
}

TEST(Npu, ConservationOfferedEqualsDeliveredPlusDropped) {
  PinnedScheduler sched(0);
  // 3 Mpps onto ONE core that can do 2 Mpps -> heavy drops, all accounted.
  const auto report = run_scenario(tiny_scenario(3.0, 0.01), sched);
  EXPECT_GT(report.offered, 0u);
  EXPECT_GT(report.dropped, 0u);
  EXPECT_EQ(report.offered, report.delivered + report.dropped);
}

TEST(Npu, NoDropsUnderLightLoad) {
  PinnedScheduler sched(0);
  // 0.5 Mpps onto one core with 2 Mpps capacity.
  const auto report = run_scenario(tiny_scenario(0.5, 0.01), sched);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.offered, report.delivered);
}

TEST(Npu, SingleCoreFifoNeverReorders) {
  PinnedScheduler sched(0);
  const auto report = run_scenario(tiny_scenario(1.5, 0.01), sched);
  EXPECT_EQ(report.out_of_order, 0u) << "a single FIFO core preserves order";
  EXPECT_EQ(report.flow_migrations, 0u);
  EXPECT_EQ(report.fm_penalties, 0u);
}

TEST(Npu, SameServiceNeverColdCache) {
  PinnedScheduler sched(0);
  const auto report = run_scenario(tiny_scenario(1.0, 0.01), sched);
  EXPECT_EQ(report.cold_cache_events, 0u);
}

TEST(Npu, PingPongChargesMigrationPenalties) {
  PingPongScheduler sched;
  // Single heavy flow: every consecutive pair lands on different cores.
  auto cfg = tiny_scenario(1.0, 0.005, /*cores=*/2, ServicePath::kIpForward,
                           /*flows=*/1);
  const auto report = run_scenario(cfg, sched);
  EXPECT_GT(report.flow_migrations, report.offered / 2);
  EXPECT_GT(report.fm_penalties, 0u);
  // With both cores lightly loaded and equal service times the pattern
  // stays in order... but queueing jitter can reorder; just assert the
  // penalty accounting, which is deterministic.
  EXPECT_EQ(report.cold_cache_events, 0u);
}

TEST(Npu, PingPongOnOverloadReorders) {
  PingPongScheduler sched;
  auto cfg = tiny_scenario(3.5, 0.01, 2, ServicePath::kIpForward, 1);
  const auto report = run_scenario(cfg, sched);
  // One queue drains ahead of the other under pressure: reordering is
  // unavoidable for an interleaved single flow.
  EXPECT_GT(report.out_of_order, 0u);
}

TEST(Npu, ColdCachePenaltyChargedOnServiceSwitch) {
  // Two services pinned to the same core: every switch costs 10 us.
  ScenarioConfig cfg = tiny_scenario(0.2, 0.01, 1);
  ServiceTraffic other = cfg.services[0];
  other.path = ServicePath::kMalwareScan;
  SyntheticTraceSpec spec;
  spec.num_flows = 50;
  spec.seed = 99;
  other.trace = std::make_shared<SyntheticTrace>(spec);
  cfg.services.push_back(other);

  PinnedScheduler sched(0);
  const auto report = run_scenario(cfg, sched);
  EXPECT_GT(report.cold_cache_events, 0u);
  EXPECT_GT(report.cold_cache_ratio(), 0.2)
      << "alternating services should switch often";
}

TEST(Npu, LatencyIncludesQueueing) {
  PinnedScheduler sched(0);
  // Light load: latency ~= service time (0.5 us for 64 B IP forwarding).
  const auto light = run_scenario(tiny_scenario(0.1, 0.01), sched);
  EXPECT_GE(light.latency_ns.quantile(0.5), from_us(0.5) - 32);
  // Overload: p99 latency far above service time (queue of 32 * 0.5 us).
  const auto heavy = run_scenario(tiny_scenario(4.0, 0.01), sched);
  EXPECT_GT(heavy.latency_ns.quantile(0.99), from_us(8.0));
}

TEST(Npu, UtilizationBoundedAndSaturates) {
  PinnedScheduler pinned(0);
  const auto idle = run_scenario(tiny_scenario(0.1, 0.01), pinned);
  EXPECT_GT(idle.mean_core_utilization, 0.0);
  EXPECT_LT(idle.mean_core_utilization, 0.2);

  const auto busy = run_scenario(tiny_scenario(5.0, 0.01), pinned);
  // One of two cores saturated -> mean ~0.5.
  EXPECT_GT(busy.mean_core_utilization, 0.4);
  EXPECT_LE(busy.mean_core_utilization, 1.0);
}

TEST(Npu, ThroughputMatchesDeliveredOverTime) {
  PinnedScheduler sched(0);
  const auto report = run_scenario(tiny_scenario(1.0, 0.02), sched);
  EXPECT_NEAR(report.throughput_mpps(), 1.0, 0.1);
}

TEST(Npu, DropsAttributedToService) {
  PinnedScheduler sched(0);
  const auto report = run_scenario(tiny_scenario(4.0, 0.01), sched);
  EXPECT_EQ(report.dropped_by_service[static_cast<std::size_t>(
                ServicePath::kIpForward)],
            report.dropped);
}

TEST(Npu, InvalidCoreIdFromSchedulerThrows) {
  class BadScheduler final : public Scheduler {
   public:
    void attach(std::size_t) override {}
    CoreId schedule(const SimPacket&, const NpuView&) override { return 99; }
    std::string name() const override { return "Bad"; }
  };
  BadScheduler sched;
  EXPECT_THROW(run_scenario(tiny_scenario(1.0, 0.001), sched),
               std::logic_error);
}

TEST(Npu, DeterministicAcrossRuns) {
  PinnedScheduler a(0), b(0);
  const auto cfg = tiny_scenario(2.0, 0.01);
  const auto ra = run_scenario(cfg, a);
  const auto rb = run_scenario(cfg, b);
  EXPECT_EQ(ra.offered, rb.offered);
  EXPECT_EQ(ra.delivered, rb.delivered);
  EXPECT_EQ(ra.dropped, rb.dropped);
  EXPECT_EQ(ra.out_of_order, rb.out_of_order);
  EXPECT_EQ(ra.latency_ns.sum(), rb.latency_ns.sum());
}

TEST(Npu, ViewExposesIdleSince) {
  // Scheduler-side probe: cores start idle at t=0 and become busy.
  class ProbeScheduler final : public Scheduler {
   public:
    void attach(std::size_t) override {}
    CoreId schedule(const SimPacket&, const NpuView& view) override {
      if (first_) {
        EXPECT_EQ(view.cores()[0].idle_since, 0);
        first_ = false;
      } else {
        saw_busy_ |= view.cores()[0].busy;
      }
      return 0;
    }
    std::string name() const override { return "Probe"; }
    bool saw_busy_ = false;

   private:
    bool first_ = true;
  };
  ProbeScheduler sched;
  run_scenario(tiny_scenario(2.0, 0.005), sched);
  EXPECT_TRUE(sched.saw_busy_);
}

// ---------------------------------------------------------- ReorderBuffer ---

TEST(ReorderBuffer, InOrderStreamPassesThroughUnbuffered) {
  ReorderBuffer rob;
  for (std::uint32_t seq = 0; seq < 5; ++seq) {
    const auto out = rob.on_complete(7, seq, 100 * seq);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].seq, seq);
    EXPECT_EQ(out[0].held_ns, 0);
  }
  EXPECT_EQ(rob.occupancy(), 0u);
  EXPECT_EQ(rob.buffered_total(), 0u);
  EXPECT_EQ(rob.released_total(), 5u);
  EXPECT_EQ(rob.disordered_flows(), 0u);
}

TEST(ReorderBuffer, GapHoldsSuccessorsThenReleasesInFlowOrder) {
  ReorderBuffer rob;
  // seq 1 and 2 complete while 0 is still in flight: both held.
  EXPECT_TRUE(rob.on_complete(3, 1, 100).empty());
  EXPECT_TRUE(rob.on_complete(3, 2, 200).empty());
  EXPECT_EQ(rob.occupancy(), 2u);
  EXPECT_EQ(rob.max_occupancy(), 2u);
  // seq 0 completes: all three leave, in order, with hold times.
  const auto out = rob.on_complete(3, 0, 500);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_EQ(out[0].held_ns, 0);
  EXPECT_EQ(out[1].seq, 1u);
  EXPECT_EQ(out[1].held_ns, 400);
  EXPECT_EQ(out[2].seq, 2u);
  EXPECT_EQ(out[2].held_ns, 300);
  EXPECT_EQ(rob.occupancy(), 0u);
  EXPECT_EQ(rob.buffered_total(), 2u);
  EXPECT_EQ(rob.released_total(), 3u);
  EXPECT_EQ(rob.total_held_ns(), 700);
  EXPECT_EQ(rob.disordered_flows(), 0u) << "flow state reclaimed";
}

TEST(ReorderBuffer, DropOfGapHeadReleasesHeldSuccessors) {
  // The mid-window drop case: a full ingress queue drops the packet the
  // window head is waiting for. Held successors must flow out immediately;
  // the buffer must never wait for a packet that will not arrive.
  ReorderBuffer rob;
  EXPECT_TRUE(rob.on_complete(9, 1, 10).empty());
  EXPECT_TRUE(rob.on_complete(9, 2, 20).empty());
  EXPECT_EQ(rob.occupancy(), 2u);
  const auto out = rob.on_drop(9, 0, 50);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seq, 1u);
  EXPECT_EQ(out[1].seq, 2u);
  EXPECT_EQ(rob.occupancy(), 0u);
  EXPECT_EQ(rob.released_total(), 2u);
}

TEST(ReorderBuffer, DropRecordedAheadIsSkippedWhenReached) {
  ReorderBuffer rob;
  // seq 1 is dropped before 0 even completes (queue-full on arrival order
  // is not release order). Nothing releasable yet.
  EXPECT_TRUE(rob.on_drop(4, 1, 5).empty());
  // seq 0 completes: releases 0, then skips the dropped 1.
  const auto out = rob.on_complete(4, 0, 30);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].seq, 0u);
  // seq 2 is now the expected head and passes straight through.
  const auto out2 = rob.on_complete(4, 2, 40);
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(out2[0].seq, 2u);
  EXPECT_EQ(rob.disordered_flows(), 0u);
}

TEST(ReorderBuffer, InterleavedFlowsAreIndependent) {
  ReorderBuffer rob;
  EXPECT_TRUE(rob.on_complete(0, 1, 10).empty());  // flow 0 has a gap
  const auto f1 = rob.on_complete(1, 0, 20);       // flow 1 is in order
  ASSERT_EQ(f1.size(), 1u);
  EXPECT_EQ(f1[0].gflow, 1u);
  const auto f0 = rob.on_complete(0, 0, 30);
  ASSERT_EQ(f0.size(), 2u);
  EXPECT_EQ(f0[0].gflow, 0u);
  EXPECT_EQ(rob.occupancy(), 0u);
}

TEST(Npu, RestoreOrderZeroesOooUnderPingPongOverload) {
  // The order-restoration counterpart of PingPongOnOverloadReorders: same
  // adversarial scheduler and overload, but completions route through the
  // egress ReorderBuffer — the wire must see zero reordering, and the ROB
  // stats must account for every delivered packet.
  PingPongScheduler sched;
  auto cfg = tiny_scenario(3.5, 0.01, 2, ServicePath::kIpForward, 1);
  cfg.restore_order = true;
  const auto report = run_scenario(cfg, sched);
  EXPECT_GT(report.dropped, 0u) << "overload must drop (exercises on_drop)";
  EXPECT_EQ(report.out_of_order, 0u);
  EXPECT_GT(report.extra.at("rob_max_occupancy"), 0.0)
      << "an interleaved flow must actually be buffered";
  EXPECT_GT(report.extra.at("rob_buffered_packets"), 0.0);
  // The run drains all in-flight work past the horizon, so nothing can be
  // stranded: everything delivered left through the buffer.
  EXPECT_EQ(report.extra.at("rob_stranded_packets"), 0.0);
  EXPECT_EQ(static_cast<std::uint64_t>(
                report.extra.at("rob_released_packets")),
            report.delivered);
}

TEST(Npu, RestoreOrderIsFreeForSingleFifoCore) {
  // A pinned single core never reorders, so the ROB should pass everything
  // straight through: no buffering, no holds.
  PinnedScheduler sched(0);
  auto cfg = tiny_scenario(1.5, 0.01);
  cfg.restore_order = true;
  const auto report = run_scenario(cfg, sched);
  EXPECT_EQ(report.out_of_order, 0u);
  EXPECT_EQ(report.extra.at("rob_buffered_packets"), 0.0);
  EXPECT_EQ(report.extra.at("rob_max_occupancy"), 0.0);
  EXPECT_EQ(report.extra.at("rob_mean_held_us"), 0.0);
  EXPECT_EQ(static_cast<std::uint64_t>(
                report.extra.at("rob_released_packets")),
            report.delivered);
}

TEST(SimReport, RatioGuardsAgainstEmpty) {
  SimReport r;
  EXPECT_EQ(r.drop_ratio(), 0.0);
  EXPECT_EQ(r.ooo_ratio(), 0.0);
  EXPECT_EQ(r.cold_cache_ratio(), 0.0);
  EXPECT_EQ(r.throughput_mpps(), 0.0);
}

TEST(SimReport, SummaryContainsSchedulerName) {
  SimReport r;
  r.scheduler = "LAPS";
  r.scenario = "T1";
  EXPECT_NE(r.summary().find("LAPS"), std::string::npos);
  EXPECT_NE(r.summary().find("T1"), std::string::npos);
}

TEST(RunScenario, RejectsEmptyServices) {
  PinnedScheduler sched(0);
  ScenarioConfig cfg;
  EXPECT_THROW(run_scenario(cfg, sched), std::invalid_argument);
}

}  // namespace
}  // namespace laps
