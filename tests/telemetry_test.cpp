// Tests for the live-telemetry subsystem: MetricsRegistry (sharded
// single-writer instruments, relaxed-atomic publication, freeze-on-shard),
// SnapshotRing (bounded SPSC, drop-not-block), TelemetryProbe (epoch
// snapshots, exact end-of-run reconciliation, per-policy gauge discovery),
// the JSONL / Prometheus / Chrome-trace exporters, the shared duration
// grammar, ParallelRunner grid telemetry, and PerfCounterScope's graceful
// degradation.
//
// The load-bearing assertions are:
//  * GoldenGridFinalSnapshotMatchesReport — on the golden determinism grid
//    the probe's final snapshot must equal the SimReport *exactly* (the
//    telemetry stream is the report, sliced in time, not an approximation),
//  * GoldenTelemetryOnDoesNotPerturbTheRun — attaching the probe (with
//    epochs on) leaves the physics byte-identical,
//  * ExactAggregatesAlongsideBuckets — the Prometheus exposition carries
//    exact count/sum/max next to the <= 1/32-error bucket bounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "baselines/afs.h"
#include "baselines/fcfs.h"
#include "baselines/static_hash.h"
#include "core/laps.h"
#include "exp/experiment.h"
#include "exp/scheduler_registry.h"
#include "sim/engine.h"
#include "sim/probes.h"
#include "sim/report_json.h"
#include "sim/runner.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/perf_counters.h"
#include "telemetry/probe.h"
#include "telemetry/snapshot_ring.h"
#include "trace/synthetic.h"
#include "util/duration.h"
#include "util/histogram.h"

namespace laps {
namespace {

using telemetry::MetricsRegistry;
using telemetry::MetricsSnapshot;
using telemetry::SnapshotRing;
using telemetry::TelemetryConfig;
using telemetry::TelemetryProbe;

// ------------------------------------------------------------ test helpers ---

// Same golden scenario the determinism and flow-audit suites pin: small
// enough to run a 16-cell grid in seconds, busy enough to exercise drops,
// reordering, and migrations.
ScenarioConfig golden_scenario(const std::string& trace, std::uint64_t seed,
                               double load_mpps) {
  ScenarioConfig cfg;
  cfg.name = "golden." + trace;
  cfg.num_cores = 4;
  cfg.queue_capacity = 8;
  cfg.seconds = 0.002;
  cfg.seed = seed;
  cfg.restore_order = false;
  SyntheticTraceSpec spec;
  spec.name = trace;
  spec.num_flows = 4096;
  spec.seed = seed * 31 + 7;
  if (trace == "churny") {
    spec.churn_per_packet = 0.01;
    spec.zipf_alpha = 1.2;
  }
  ServiceTraffic s;
  s.path = ServicePath::kIpForward;
  s.rate = HoltWintersParams{load_mpps, 0.0, 0.0, 10.0, 0.0};
  s.trace = std::make_shared<SyntheticTrace>(spec);
  cfg.services = {s};
  return cfg;
}

std::unique_ptr<Scheduler> make_sched(const std::string& name) {
  if (name == "FCFS") return std::make_unique<FcfsScheduler>();
  if (name == "StaticHash") return std::make_unique<StaticHashScheduler>();
  if (name == "AFS") return std::make_unique<AfsScheduler>();
  LapsConfig cfg;
  cfg.num_services = 1;
  return std::make_unique<LapsScheduler>(cfg);
}

std::size_t index_of(const std::vector<std::string>& names,
                     const std::string& name) {
  const auto it = std::find(names.begin(), names.end(), name);
  EXPECT_NE(it, names.end()) << "instrument not registered: " << name;
  return static_cast<std::size_t>(it - names.begin());
}

std::uint64_t counter_value(const TelemetryProbe& probe,
                            const MetricsSnapshot& snap,
                            const std::string& name) {
  return snap.counters[index_of(probe.registry().counter_names(), name)];
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

// Extracts the integer following `"key":` in a JSON line. The exporter
// emits flat numeric fields, so scanning is enough for the tests.
std::uint64_t json_uint(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  EXPECT_NE(at, std::string::npos) << "missing " << key << " in: " << line;
  if (at == std::string::npos) return 0;
  return std::strtoull(line.c_str() + at + needle.size(), nullptr, 10);
}

// The numeric sample at the end of the first exposition line starting with
// `prefix` ("laps_foo_count{" style). Prometheus lines are `name{labels} v`.
std::optional<double> prom_value(const std::string& text,
                                 const std::string& prefix) {
  for (const std::string& line : split_lines(text)) {
    if (line.rfind(prefix, 0) != 0) continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos) return std::nullopt;
    return std::strtod(line.c_str() + space + 1, nullptr);
  }
  return std::nullopt;
}

// ----------------------------------------------------------- MetricsRegistry ---

TEST(MetricsRegistry, RegistrationIsIdempotentAndOrdered) {
  MetricsRegistry reg;
  const auto a = reg.counter("alpha");
  const auto b = reg.counter("beta");
  const auto a2 = reg.counter("alpha");
  EXPECT_EQ(a.index, a2.index) << "re-registering a name must return its id";
  EXPECT_NE(a.index, b.index);
  const auto g = reg.gauge("alpha");  // separate namespace per kind
  EXPECT_EQ(g.index, 0u);
  const auto h = reg.histogram("lat");
  EXPECT_TRUE(h.valid());
  EXPECT_EQ(reg.counter_names(), (std::vector<std::string>{"alpha", "beta"}));
  EXPECT_EQ(reg.gauge_names(), (std::vector<std::string>{"alpha"}));
  EXPECT_EQ(reg.histogram_names(), (std::vector<std::string>{"lat"}));
}

TEST(MetricsRegistry, FreezesNewNamesOnceShardsExist) {
  MetricsRegistry reg;
  const auto a = reg.counter("alpha");
  MetricsRegistry::Shard& shard = reg.local_shard();
  shard.add(a, 3);
  // Existing names still resolve; new names are structural changes that
  // would race shard sizing, so they throw.
  EXPECT_EQ(reg.counter("alpha").index, a.index);
  EXPECT_THROW(reg.counter("fresh"), std::logic_error);
  EXPECT_THROW(reg.gauge("fresh"), std::logic_error);
  EXPECT_THROW(reg.histogram("fresh"), std::logic_error);
  EXPECT_EQ(reg.snapshot_counters(0).counters[a.index], 3u);
}

TEST(MetricsRegistry, LocalShardIsStablePerThread) {
  MetricsRegistry reg;
  reg.counter("c");
  MetricsRegistry::Shard& s1 = reg.local_shard();
  MetricsRegistry::Shard& s2 = reg.local_shard();
  EXPECT_EQ(&s1, &s2);
  EXPECT_EQ(reg.num_shards(), 1u);
}

TEST(MetricsRegistry, GaugeIsLastWriteWins) {
  MetricsRegistry reg;
  const auto g = reg.gauge("depth");
  MetricsRegistry::Shard& shard = reg.local_shard();
  shard.set(g, 41);
  shard.set(g, -7);
  EXPECT_EQ(reg.snapshot_counters(0).gauges[g.index], -7);
}

TEST(MetricsRegistry, SnapshotSumsAcrossShardsExactly) {
  // The TSan-pinned contract: N writer threads each own a shard and hammer
  // counters/gauges/histograms while the main thread runs concurrent
  // counters-only snapshots (race-free by construction); the full snapshot
  // after join must be exact.
  MetricsRegistry reg;
  const auto c = reg.counter("events");
  const auto g = reg.gauge("level");
  const auto h = reg.histogram("size");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;

  std::atomic<bool> go{false};
  std::atomic<int> running{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      MetricsRegistry::Shard& shard = reg.local_shard();
      running.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        shard.add(c);
        shard.set(g, static_cast<std::int64_t>(t + 1));
        shard.record(h, static_cast<std::int64_t>(i % 1024));
      }
    });
  }
  while (running.load() != kThreads) {
  }
  go.store(true, std::memory_order_release);
  // Concurrent observer: totals must be monotone and never torn past the
  // final sum. (Under TSan this loop is the race detector's probe.)
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const MetricsSnapshot snap = reg.snapshot_counters(i);
    EXPECT_GE(snap.counters[c.index], last);
    EXPECT_LE(snap.counters[c.index], kThreads * kPerThread);
    last = snap.counters[c.index];
  }
  for (std::thread& w : writers) w.join();

  const MetricsSnapshot snap = reg.snapshot(0);
  EXPECT_EQ(snap.counters[c.index], kThreads * kPerThread);
  // Gauges sum across shards; each thread last wrote t+1.
  EXPECT_EQ(snap.gauges[g.index], 1 + 2 + 3 + 4);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, kThreads * kPerThread);
  EXPECT_EQ(snap.histograms[0].max, 1023);
  const Histogram merged = reg.merged_histogram(h);
  EXPECT_EQ(merged.count(), kThreads * kPerThread);
  EXPECT_EQ(reg.num_shards(), static_cast<std::size_t>(kThreads));
}

TEST(MetricsRegistry, SnapshotSequenceIsMonotone) {
  MetricsRegistry reg;
  reg.counter("c");
  const auto s1 = reg.snapshot_counters(10);
  const auto s2 = reg.snapshot(20);
  const auto s3 = reg.snapshot_counters(30);
  EXPECT_LT(s1.seq, s2.seq);
  EXPECT_LT(s2.seq, s3.seq);
  EXPECT_EQ(s2.sim_time, 20);
}

// -------------------------------------------------------------- SnapshotRing ---

MetricsSnapshot stamped(std::uint64_t seq) {
  MetricsSnapshot snap;
  snap.seq = seq;
  snap.sim_time = static_cast<TimeNs>(seq * 100);
  return snap;
}

TEST(SnapshotRing, FifoOrderAndCapacityRounding) {
  SnapshotRing ring(3);  // rounds up to 4 slots -> 3 usable
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_TRUE(ring.push(stamped(1)));
  EXPECT_TRUE(ring.push(stamped(2)));
  EXPECT_EQ(ring.size(), 2u);
  const auto a = ring.pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->seq, 1u);
  EXPECT_TRUE(ring.push(stamped(3)));
  const auto b = ring.pop();
  const auto c = ring.pop();
  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(b->seq, 2u);
  EXPECT_EQ(c->seq, 3u);
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(SnapshotRing, FullRingDropsInsteadOfBlocking) {
  SnapshotRing ring(4);
  for (std::uint64_t i = 0; i < ring.capacity(); ++i) {
    EXPECT_TRUE(ring.push(stamped(i)));
  }
  EXPECT_FALSE(ring.push(stamped(99)));
  EXPECT_FALSE(ring.push(stamped(100)));
  EXPECT_EQ(ring.dropped(), 2u);
  // Draining one slot reopens the ring; the dropped count is cumulative.
  ASSERT_TRUE(ring.pop().has_value());
  EXPECT_TRUE(ring.push(stamped(101)));
  EXPECT_EQ(ring.dropped(), 2u);
}

TEST(SnapshotRing, WrapsManyTimesWithoutLoss) {
  SnapshotRing ring(2);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.push(stamped(i)));
    const auto got = ring.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->seq, i);
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(SnapshotRing, ConcurrentFastProducerSlowConsumerReconcilesExactly) {
  // SPSC contract under real concurrency (runs under TSan in CI via
  // scripts/check_sanitize.sh --threads): a producer pushing flat-out into
  // a tiny ring while a consumer drains with artificial lag. Snapshots may
  // be dropped — never duplicated, reordered, or torn — so at quiesce the
  // books must balance exactly:
  //   pushes == pops + dropped + remainder-in-ring
  // and the consumed seqs must be strictly increasing with every gap
  // accounted to dropped().
  SnapshotRing ring(8);
  constexpr std::uint64_t kPushes = 200'000;
  std::atomic<bool> producer_done{false};

  std::uint64_t accepted = 0;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kPushes; ++i) {
      if (ring.push(stamped(i))) ++accepted;
    }
    producer_done.store(true, std::memory_order_release);
  });

  std::uint64_t pops = 0;
  std::uint64_t last_seq = 0;
  bool seen_any = false;
  bool ordered = true;
  bool torn = false;
  std::thread consumer([&] {
    int lag = 0;
    while (true) {
      const auto snap = ring.pop();
      if (!snap.has_value()) {
        if (producer_done.load(std::memory_order_acquire)) break;
        std::this_thread::yield();
        continue;
      }
      ++pops;
      // Tear check: sim_time is derived from seq at push time; a torn read
      // would decouple them.
      if (snap->sim_time != static_cast<TimeNs>(snap->seq * 100)) torn = true;
      if (seen_any && snap->seq <= last_seq) ordered = false;
      last_seq = snap->seq;
      seen_any = true;
      // Slow the consumer every few pops so the ring actually fills and
      // the drop path is exercised, not just the happy path.
      if (++lag % 64 == 0) std::this_thread::yield();
    }
  });
  producer.join();
  consumer.join();

  EXPECT_TRUE(ordered) << "consumed seqs went backwards";
  EXPECT_FALSE(torn) << "snapshot fields decoupled (torn read)";

  // Drain the remainder single-threaded and reconcile the books.
  std::uint64_t remainder = 0;
  while (ring.pop().has_value()) ++remainder;
  EXPECT_EQ(accepted, pops + remainder);
  EXPECT_EQ(kPushes, pops + remainder + ring.dropped());
  EXPECT_GT(pops, 0u);
}

// ------------------------------------------------------------ duration flags ---

TEST(DurationGrammar, ParsesEverySuffixAndBareNanoseconds) {
  EXPECT_EQ(util::parse_duration("t", "250"), 250);
  EXPECT_EQ(util::parse_duration("t", "5ns"), 5);
  EXPECT_EQ(util::parse_duration("t", "5us"), 5'000);
  EXPECT_EQ(util::parse_duration("t", "2ms"), 2'000'000);
  EXPECT_EQ(util::parse_duration("t", "1s"), 1'000'000'000);
  EXPECT_EQ(util::parse_duration("t", "1.5us"), 1'500);
  EXPECT_EQ(util::parse_duration("t", "0"), 0);
}

TEST(DurationGrammar, RejectsGarbageAndNegativesWithContext) {
  try {
    util::parse_duration("--telemetry", "12parsecs");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("--telemetry"), std::string::npos) << what;
    EXPECT_NE(what.find("wants a number"), std::string::npos) << what;
  }
  try {
    util::parse_duration("--telemetry", "-5us");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("non-negative duration"), std::string::npos) << what;
  }
}

TEST(DurationGrammar, RegistryParameterErrorsMatchByteForByte) {
  // Satellite contract: the scheduler registry's duration parameters and
  // the telemetry flag share one grammar AND one error voice. Pin the
  // registry's message to exactly what util::parse_duration produces for
  // the same context string.
  std::string registry_msg;
  try {
    make_scheduler("laps:idle_th=12parsecs");
    FAIL() << "expected SchedulerSpecError";
  } catch (const SchedulerSpecError& e) {
    registry_msg = e.what();
  }
  std::string util_msg;
  try {
    util::parse_duration("scheduler 'laps': parameter 'idle_th'", "12parsecs");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    util_msg = e.what();
  }
  EXPECT_EQ(registry_msg, util_msg);
}

// ------------------------------------------------------------ TelemetryProbe ---

TEST(TelemetryProbe, GoldenTelemetryOnDoesNotPerturbTheRun) {
  // Attaching the probe turns epochs on; the run's physics must still be
  // byte-identical to the bare run (probes observe, never steer).
  for (const std::string trace : {"plain", "churny"}) {
    const ScenarioConfig cfg = golden_scenario(trace, 42, 12.0);
    auto bare_sched = make_sched("LAPS");
    const SimReport bare = run_scenario(cfg, *bare_sched);

    auto sched = make_sched("LAPS");
    TelemetryProbe probe({}, sched.get());
    const SimReport instrumented =
        run_scenario(cfg, *sched, ProbeSet{&probe}, 100 * kMicrosecond);
    EXPECT_EQ(report_to_json(bare), report_to_json(instrumented)) << trace;
  }
}

TEST(TelemetryProbe, GoldenGridFinalSnapshotMatchesReport) {
  // The reconciliation contract over the golden grid: the final snapshot's
  // engine counters and latency aggregates equal the SimReport exactly.
  for (const std::string trace : {"plain", "churny"}) {
    for (const std::string sched_name :
         {"FCFS", "StaticHash", "AFS", "LAPS"}) {
      for (const std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{42}}) {
        const ScenarioConfig cfg = golden_scenario(trace, seed, 12.0);
        auto sched = make_sched(sched_name);
        TelemetryProbe probe({}, sched.get());
        const SimReport report =
            run_scenario(cfg, *sched, ProbeSet{&probe}, 100 * kMicrosecond);
        ASSERT_TRUE(probe.finished());
        const MetricsSnapshot& fin = probe.final_snapshot();
        const std::string cell =
            trace + "/" + sched_name + "/seed=" + std::to_string(seed);
        EXPECT_EQ(counter_value(probe, fin, "engine.offered"), report.offered)
            << cell;
        EXPECT_EQ(counter_value(probe, fin, "engine.dropped"), report.dropped)
            << cell;
        EXPECT_EQ(counter_value(probe, fin, "engine.delivered"),
                  report.delivered)
            << cell;
        EXPECT_EQ(counter_value(probe, fin, "engine.out_of_order"),
                  report.out_of_order)
            << cell;
        EXPECT_EQ(counter_value(probe, fin, "engine.flow_migrations"),
                  report.flow_migrations)
            << cell;
        const std::size_t h =
            index_of(probe.registry().histogram_names(), "engine.latency_ns");
        ASSERT_LT(h, fin.histograms.size());
        EXPECT_EQ(fin.histograms[h].count, report.latency_ns.count()) << cell;
        EXPECT_EQ(fin.histograms[h].sum, report.latency_ns.sum()) << cell;
        EXPECT_EQ(fin.histograms[h].max, report.latency_ns.max()) << cell;
        // Sanity on the grid itself: the golden load actually exercises
        // the interesting counters somewhere.
        EXPECT_GT(report.offered, 0u) << cell;
      }
    }
  }
}

TEST(TelemetryProbe, StreamsMonotoneSnapshotsAtEpochCadence) {
  const ScenarioConfig cfg = golden_scenario("plain", 1, 12.0);
  auto sched = make_sched("LAPS");
  TelemetryConfig tcfg;
  tcfg.interval = 100 * kMicrosecond;
  TelemetryProbe probe(tcfg, sched.get());
  run_scenario(cfg, *sched, ProbeSet{&probe}, 100 * kMicrosecond);

  // 2ms of simulated time at 100us cadence: ~20 snapshots, minus edge
  // effects. They must be time-ordered with monotone counters.
  std::size_t n = 0;
  std::uint64_t last_seq = 0;
  TimeNs last_time = -1;
  std::uint64_t last_offered = 0;
  const std::size_t offered_idx =
      index_of(probe.registry().counter_names(), "engine.offered");
  while (const auto snap = probe.ring().pop()) {
    if (n > 0) {
      EXPECT_GT(snap->seq, last_seq);
      EXPECT_GT(snap->sim_time, last_time);
      EXPECT_GE(snap->counters[offered_idx], last_offered);
    }
    last_seq = snap->seq;
    last_time = snap->sim_time;
    last_offered = snap->counters[offered_idx];
    EXPECT_FALSE(snap->histograms.empty())
        << "published snapshots are full snapshots";
    ++n;
  }
  EXPECT_GE(n, 15u);
  EXPECT_LE(n, 25u);
  EXPECT_EQ(probe.ring().dropped(), 0u);
}

TEST(TelemetryProbe, DiscoversGaugesPerSchedulerPolicy) {
  // sched.* gauges exist only for mechanisms the policy owns: LAPS has the
  // AFD cache and pinner; StaticHash only the liveness bitmap; FCFS nothing.
  const auto gauges_for = [](const std::string& sched_name) {
    const ScenarioConfig cfg = golden_scenario("plain", 1, 4.0);
    auto sched = make_sched(sched_name);
    TelemetryProbe probe({}, sched.get());
    run_scenario(cfg, *sched, ProbeSet{&probe}, 100 * kMicrosecond);
    return probe.registry().gauge_names();
  };
  const auto has = [](const std::vector<std::string>& names,
                      const std::string& name) {
    return std::find(names.begin(), names.end(), name) != names.end();
  };

  const auto laps = gauges_for("LAPS");
  EXPECT_TRUE(has(laps, "sched.afd_hits"));
  EXPECT_TRUE(has(laps, "sched.afc_occupancy"));
  EXPECT_TRUE(has(laps, "sched.pinned_flows"));

  const auto hash = gauges_for("StaticHash");
  EXPECT_TRUE(has(hash, "sched.core_transitions"));
  EXPECT_FALSE(has(hash, "sched.afd_hits"));
  EXPECT_FALSE(has(hash, "sched.pinned_flows"));

  const auto fcfs = gauges_for("FCFS");
  for (const std::string& name : fcfs) {
    EXPECT_EQ(name.rfind("sched.", 0), std::string::npos)
        << "FCFS must export no sched.* gauges, got " << name;
  }
  // Engine gauges are policy-independent.
  EXPECT_TRUE(has(fcfs, "engine.queue_depth_total"));
  EXPECT_TRUE(has(fcfs, "engine.queue_depth.core0"));
}

// ------------------------------------------------------------- JSONL export ---

TEST(TelemetryExportJsonl, StreamReconcilesAndMarksFinalLine) {
  const ScenarioConfig cfg = golden_scenario("churny", 42, 12.0);
  auto sched = make_sched("LAPS");
  TelemetryProbe probe({}, sched.get());
  const SimReport report =
      run_scenario(cfg, *sched, ProbeSet{&probe}, 100 * kMicrosecond);

  const std::string path = testing::TempDir() + "telemetry_stream.jsonl";
  telemetry::write_telemetry_jsonl(path, probe);
  EXPECT_EQ(probe.ring().size(), 0u) << "exporter drains the ring";

  const std::vector<std::string> lines = split_lines(read_file(path));
  ASSERT_GE(lines.size(), 2u);
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    EXPECT_EQ(lines[i].find("\"final\""), std::string::npos)
        << "only the last line is final";
  }
  const std::string& fin = lines.back();
  EXPECT_NE(fin.find("\"final\":true"), std::string::npos);
  EXPECT_NE(fin.find("\"dropped_snapshots\":0"), std::string::npos);
  EXPECT_EQ(json_uint(fin, "engine.offered"), report.offered);
  EXPECT_EQ(json_uint(fin, "engine.delivered"), report.delivered);
  EXPECT_EQ(json_uint(fin, "engine.dropped"), report.dropped);
  EXPECT_EQ(json_uint(fin, "engine.out_of_order"), report.out_of_order);
  EXPECT_EQ(json_uint(fin, "engine.flow_migrations"), report.flow_migrations);
  std::remove(path.c_str());
}

TEST(TelemetryExportJsonl, MidRunLinesAreTimeOrderedPrefixSums) {
  const ScenarioConfig cfg = golden_scenario("plain", 1, 12.0);
  auto sched = make_sched("AFS");
  TelemetryProbe probe({}, sched.get());
  const SimReport report =
      run_scenario(cfg, *sched, ProbeSet{&probe}, 100 * kMicrosecond);

  const std::string path = testing::TempDir() + "telemetry_prefix.jsonl";
  telemetry::write_telemetry_jsonl(path, probe);
  const std::vector<std::string> lines = split_lines(read_file(path));
  ASSERT_GE(lines.size(), 2u);
  std::uint64_t last_t = 0;
  std::uint64_t last_delivered = 0;
  for (const std::string& line : lines) {
    const std::uint64_t t = json_uint(line, "t_ns");
    const std::uint64_t delivered = json_uint(line, "engine.delivered");
    EXPECT_GE(t, last_t);
    EXPECT_GE(delivered, last_delivered);
    EXPECT_LE(delivered, report.delivered);
    last_t = t;
    last_delivered = delivered;
  }
  EXPECT_EQ(last_delivered, report.delivered);
  std::remove(path.c_str());
}

// -------------------------------------------------------- Prometheus export ---

TEST(TelemetryPrometheus, EscapingAndMetricNameSanitization) {
  EXPECT_EQ(telemetry::prometheus_escape("plain"), "plain");
  EXPECT_EQ(telemetry::prometheus_escape("a\\b\"c\nd"),
            "a\\\\b\\\"c\\nd");
  EXPECT_EQ(telemetry::prometheus_metric_name("engine.queue_depth.core0"),
            "laps_engine_queue_depth_core0");
  EXPECT_EQ(telemetry::prometheus_metric_name("we!rd metric"),
            "laps_we_rd_metric");
}

TEST(TelemetryPrometheus, HostileRunLabelsStayWellFormed) {
  ScenarioConfig cfg = golden_scenario("plain", 1, 4.0);
  cfg.name = "evil\"quote\\slash\nnewline";
  auto sched = make_sched("FCFS");
  TelemetryProbe probe({}, sched.get());
  run_scenario(cfg, *sched, ProbeSet{&probe}, 100 * kMicrosecond);

  const std::string text = telemetry::prometheus_text(probe);
  EXPECT_NE(
      text.find("scenario=\"evil\\\"quote\\\\slash\\nnewline\""),
      std::string::npos)
      << text.substr(0, 400);
  // No raw newline may survive inside a label value: every exposition line
  // must look like a comment, a name{...} sample, or a bare name sample.
  for (const std::string& line : split_lines(text)) {
    const bool comment = line.rfind("#", 0) == 0;
    const bool sample = line.rfind("laps_", 0) == 0;
    EXPECT_TRUE(comment || sample) << "torn line: " << line;
  }
}

TEST(TelemetryPrometheus, ExactAggregatesAlongsideBuckets) {
  // Satellite 6 regression: the histogram exposition must carry exact
  // count/sum/max (not bucket-derived approximations) so consumers can
  // compute true means; the +Inf bucket agrees with _count.
  const ScenarioConfig cfg = golden_scenario("churny", 42, 12.0);
  auto sched = make_sched("LAPS");
  TelemetryProbe probe({}, sched.get());
  const SimReport report =
      run_scenario(cfg, *sched, ProbeSet{&probe}, 100 * kMicrosecond);
  ASSERT_GT(report.latency_ns.count(), 0u);

  const std::string text = telemetry::prometheus_text(probe);
  const auto count = prom_value(text, "laps_engine_latency_ns_count{");
  const auto sum = prom_value(text, "laps_engine_latency_ns_sum{");
  const auto max = prom_value(text, "laps_engine_latency_ns_max{");
  ASSERT_TRUE(count.has_value());
  ASSERT_TRUE(sum.has_value());
  ASSERT_TRUE(max.has_value());
  EXPECT_EQ(static_cast<std::uint64_t>(*count), report.latency_ns.count());
  EXPECT_EQ(static_cast<std::int64_t>(*sum), report.latency_ns.sum());
  EXPECT_EQ(static_cast<std::int64_t>(*max), report.latency_ns.max());

  // The +Inf bucket is cumulative over everything.
  std::optional<double> inf_bucket;
  for (const std::string& line : split_lines(text)) {
    if (line.rfind("laps_engine_latency_ns_bucket{", 0) == 0 &&
        line.find("le=\"+Inf\"") != std::string::npos) {
      inf_bucket = std::strtod(line.c_str() + line.rfind(' ') + 1, nullptr);
    }
  }
  ASSERT_TRUE(inf_bucket.has_value());
  EXPECT_EQ(static_cast<std::uint64_t>(*inf_bucket),
            report.latency_ns.count());

  // Counters carry the _total convention; totals match the report exactly.
  const auto delivered = prom_value(text, "laps_engine_delivered_total{");
  ASSERT_TRUE(delivered.has_value());
  EXPECT_EQ(static_cast<std::uint64_t>(*delivered), report.delivered);
}

TEST(TelemetryPrometheus, QuantileErrorStaysWithinBucketBound) {
  // Pins the advertised <= 1/32 relative error of bucket-bound quantiles
  // against a ground-truth sorted sample set (deterministic LCG draw).
  Histogram h;
  std::vector<std::int64_t> values;
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 20'000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const std::int64_t v = static_cast<std::int64_t>((x >> 33) % 1'000'000'000) + 1000;
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    // Mirror Histogram::quantile's rank: target = max(1, floor(q * count)).
    std::uint64_t target =
        static_cast<std::uint64_t>(q * static_cast<double>(values.size()));
    if (target == 0) target = 1;
    const std::int64_t truth = values[target - 1];
    const std::int64_t approx = h.quantile(q);
    EXPECT_GE(approx, truth) << "q=" << q;
    EXPECT_LE(approx - truth, truth / 32) << "q=" << q;
  }
}

// ----------------------------------------------------- Chrome counter tracks ---

TEST(TelemetryProbe, MergesCounterTracksIntoChromeTrace) {
  const ScenarioConfig cfg = golden_scenario("plain", 1, 12.0);
  auto sched = make_sched("LAPS");
  ChromeTraceProbe trace;
  TelemetryProbe probe({}, sched.get(), &trace);
  run_scenario(cfg, *sched, ProbeSet{&probe, &trace}, 100 * kMicrosecond);

  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos)
      << "telemetry must add counter ('C') events";
  EXPECT_NE(json.find("queue_depth"), std::string::npos);
  EXPECT_NE(json.find("occupancy"), std::string::npos);
}

// -------------------------------------------------- ParallelRunner telemetry ---

SimReport fixed_report(std::uint64_t offered, std::uint64_t delivered,
                       std::uint64_t dropped) {
  SimReport r;
  r.offered = offered;
  r.delivered = delivered;
  r.dropped = dropped;
  return r;
}

TEST(ParallelRunnerTelemetry, GridCountersSumAcrossWorkers) {
  ExperimentPlan plan;
  plan.add("s1", "X", 1, [] { return fixed_report(100, 90, 10); });
  plan.add("s2", "X", 2, [] { return fixed_report(200, 150, 50); });
  plan.add("s3", "X", 3, [] { return fixed_report(50, 50, 0); });
  plan.add("s4", "X", 4, [] { return fixed_report(25, 20, 5); });

  MetricsRegistry reg;
  ParallelRunner runner(2);
  runner.set_metrics(&reg);
  const auto results = runner.run(plan);
  ASSERT_EQ(results.size(), 4u);

  const auto names = reg.counter_names();
  const MetricsSnapshot snap = reg.snapshot_counters(0);
  EXPECT_EQ(snap.counters[index_of(names, "exp.jobs_completed")], 4u);
  EXPECT_EQ(snap.counters[index_of(names, "exp.packets_offered")], 375u);
  EXPECT_EQ(snap.counters[index_of(names, "exp.packets_delivered")], 310u);
  EXPECT_EQ(snap.counters[index_of(names, "exp.packets_dropped")], 65u);
  EXPECT_LE(reg.num_shards(), 2u) << "one shard per worker thread";
}

TEST(ParallelRunnerTelemetry, NullRegistryCostsNothing) {
  ExperimentPlan plan;
  plan.add("s1", "X", 1, [] { return fixed_report(10, 10, 0); });
  ParallelRunner runner(1);
  const auto results = runner.run(plan);  // no set_metrics: must not touch one
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].report.offered, 10u);
}

// ------------------------------------------------------------- perf counters ---

TEST(TelemetryPerfCounters, DegradesToNoOpWhenHardwareDenied) {
  telemetry::PerfCounterScope scope;
  scope.start();
  // Some work between start and stop so live counters have something to see.
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 100'000; ++i) {
    sink = sink + static_cast<std::uint64_t>(i) * 3;
  }
  const telemetry::PerfCounterReading r = scope.stop();
  if (scope.available()) {
    EXPECT_TRUE(r.available);
    EXPECT_GT(r.cycles, 0.0);
    EXPECT_GT(r.instructions, 0.0);
    EXPECT_GT(r.ipc(), 0.0);
  } else {
    // Locked-down container / CI: the whole API must be an exact no-op.
    EXPECT_FALSE(r.available);
    EXPECT_EQ(r.cycles, 0.0);
    EXPECT_EQ(r.instructions, 0.0);
    EXPECT_EQ(r.cache_misses, 0.0);
    EXPECT_EQ(r.branch_misses, 0.0);
    EXPECT_EQ(r.ipc(), 0.0);
  }
}

TEST(TelemetryPerfCounters, RestartableWithoutLeakingState) {
  telemetry::PerfCounterScope scope;
  for (int rep = 0; rep < 3; ++rep) {
    scope.start();
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 10'000; ++i) sink = sink + static_cast<std::uint64_t>(i);
    const telemetry::PerfCounterReading r = scope.stop();
    EXPECT_EQ(r.available, scope.available());
  }
}

}  // namespace
}  // namespace laps
