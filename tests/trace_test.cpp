// Tests for src/trace: synthetic traces, the trace registry, the flow-size
// analyzer (Fig. 2 machinery), and pcap reader/writer round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <initializer_list>
#include <set>
#include <string>
#include <vector>

#include "exp/trace_store.h"
#include "trace/flow_stats.h"
#include "trace/pcap_io.h"
#include "trace/synthetic.h"
#include "traffic/generator.h"

namespace laps {
namespace {

// ------------------------------------------------------- SyntheticTrace ---

TEST(SyntheticTrace, RejectsBadSpec) {
  SyntheticTraceSpec spec;
  spec.size_weights = {1.0};  // mismatched with size_bytes
  EXPECT_THROW(SyntheticTrace{spec}, std::invalid_argument);
  SyntheticTraceSpec bursty;
  bursty.burstiness = 1.0;
  EXPECT_THROW(SyntheticTrace{bursty}, std::invalid_argument);
}

TEST(SyntheticTrace, DeterministicReplay) {
  SyntheticTraceSpec spec;
  spec.num_flows = 1000;
  spec.seed = 5;
  SyntheticTrace a(spec), b(spec);
  for (int i = 0; i < 1000; ++i) {
    const auto ra = a.next();
    const auto rb = b.next();
    ASSERT_TRUE(ra && rb);
    ASSERT_EQ(ra->flow_id, rb->flow_id);
    ASSERT_EQ(ra->tuple, rb->tuple);
    ASSERT_EQ(ra->size_bytes, rb->size_bytes);
  }
}

TEST(SyntheticTrace, ResetReplaysIdentically) {
  auto trace = make_trace("auck1");
  std::vector<std::uint32_t> first;
  for (int i = 0; i < 500; ++i) first.push_back(trace->next()->flow_id);
  trace->reset();
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(trace->next()->flow_id, first[i]) << "packet " << i;
  }
}

TEST(SyntheticTrace, TuplesAreUniquePerFlow) {
  SyntheticTraceSpec spec;
  spec.num_flows = 20'000;
  SyntheticTrace trace(spec);
  std::set<FiveTuple> tuples;
  for (std::uint32_t f = 0; f < spec.num_flows; f += 97) {
    tuples.insert(trace.tuple_of(f));
  }
  EXPECT_EQ(tuples.size(), (spec.num_flows + 96) / 97);
}

TEST(SyntheticTrace, TupleStableAcrossInstances) {
  const auto spec = trace_spec("caida1");
  SyntheticTrace a(spec), b(spec);
  EXPECT_EQ(a.tuple_of(123), b.tuple_of(123));
}

TEST(SyntheticTrace, RecordsMatchTupleOf) {
  // Without churn, rank == flow_id, so tuple_of reconstructs every header.
  SyntheticTraceSpec spec = trace_spec("auck2");
  spec.churn_per_packet = 0.0;
  SyntheticTrace trace(spec);
  for (int i = 0; i < 200; ++i) {
    const auto rec = trace.next();
    ASSERT_TRUE(rec);
    EXPECT_EQ(rec->tuple, trace.tuple_of(rec->flow_id));
  }
}

TEST(SyntheticTrace, FlowIdsWithinHintWithoutChurn) {
  SyntheticTraceSpec spec = trace_spec("auck1");
  spec.churn_per_packet = 0.0;
  SyntheticTrace trace(spec);
  const std::size_t hint = trace.flow_count_hint();
  EXPECT_GT(hint, 0u);
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_LT(trace.next()->flow_id, hint);
  }
}

TEST(SyntheticTrace, ChurnRetiresIdentities) {
  SyntheticTraceSpec spec = trace_spec("caida1");
  SyntheticTrace trace(spec);
  // Churny traces report an unknown flow population...
  EXPECT_EQ(trace.flow_count_hint(), 0u);
  // ...and eventually emit ids beyond the rank space (retired identities
  // get fresh dense ids, so downstream per-flow state sees new flows).
  bool saw_fresh_id = false;
  for (int i = 0; i < 300'000 && !saw_fresh_id; ++i) {
    saw_fresh_id = trace.next()->flow_id >= spec.num_flows;
  }
  EXPECT_TRUE(saw_fresh_id);
}

TEST(SyntheticTrace, SizesComeFromConfiguredMix) {
  SyntheticTraceSpec spec;
  spec.size_bytes = {100, 200};
  spec.size_weights = {0.5, 0.5};
  SyntheticTrace trace(spec);
  for (int i = 0; i < 1000; ++i) {
    const auto s = trace.next()->size_bytes;
    ASSERT_TRUE(s == 100 || s == 200);
  }
}

TEST(SyntheticTrace, BurstinessRepeatsFlows) {
  SyntheticTraceSpec calm;
  calm.num_flows = 100'000;
  calm.zipf_alpha = 1.01;
  calm.burstiness = 0.0;
  SyntheticTraceSpec bursty = calm;
  bursty.burstiness = 0.8;

  auto repeats = [](SyntheticTrace& t) {
    int r = 0;
    std::uint32_t prev = ~0u;
    for (int i = 0; i < 20'000; ++i) {
      const auto rec = t.next();
      r += rec->flow_id == prev;
      prev = rec->flow_id;
    }
    return r;
  };
  SyntheticTrace a(calm), b(bursty);
  EXPECT_GT(repeats(b), repeats(a) + 5000);
}

TEST(SyntheticTrace, ZipfSkewConcentratesTraffic) {
  // The Fig. 2 premise: the head flows carry a disproportionate share.
  FlowStatsAnalyzer stats;
  auto trace = make_trace("auck1");
  stats.consume(*trace, 200'000);
  EXPECT_GT(stats.top_share(16), 0.15);
  EXPECT_LT(stats.top_share(16), 0.95);
}

TEST(SyntheticTrace, CaidaHasMoreActiveFlowsThanAuckland) {
  // The property that drives Fig. 8a's annex-size requirement.
  FlowStatsAnalyzer caida, auck;
  auto ct = make_trace("caida1");
  auto at = make_trace("auck1");
  caida.consume(*ct, 200'000);
  auck.consume(*at, 200'000);
  EXPECT_GT(caida.distinct_flows(), 2 * auck.distinct_flows());
}

// --------------------------------------------------------------- Registry ---

TEST(TraceRegistry, AllNamesConstruct) {
  for (const std::string& name : trace_registry_names()) {
    auto trace = make_trace(name);
    EXPECT_EQ(trace->name(), name);
    EXPECT_TRUE(trace->next().has_value());
  }
}

TEST(TraceRegistry, HasPaperTraceCount) {
  // 6 CAIDA-like (Tables I+V) + 8 Auckland-like (Table II).
  EXPECT_EQ(trace_registry_names().size(), 14u);
}

TEST(TraceRegistry, UnknownNameThrows) {
  EXPECT_THROW(trace_spec("nosuch"), std::out_of_range);
}

TEST(TraceRegistry, DistinctSeedsProduceDistinctStreams) {
  auto a = make_trace("caida1");
  auto b = make_trace("caida2");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a->next()->flow_id == b->next()->flow_id;
  }
  EXPECT_LT(same, 50);
}

// ------------------------------------------------------ FlowStatsAnalyzer ---

TEST(FlowStats, EmptyAnalyzer) {
  FlowStatsAnalyzer stats;
  EXPECT_EQ(stats.total_packets(), 0u);
  EXPECT_EQ(stats.distinct_flows(), 0u);
  EXPECT_EQ(stats.top_share(16), 0.0);
  EXPECT_TRUE(stats.by_rank().empty());
}

TEST(FlowStats, CountsPacketsAndBytes) {
  FlowStatsAnalyzer stats;
  PacketRecord rec;
  rec.flow_id = 3;
  rec.size_bytes = 100;
  stats.record(rec);
  stats.record(rec);
  rec.flow_id = 1;
  rec.size_bytes = 50;
  stats.record(rec);
  EXPECT_EQ(stats.total_packets(), 3u);
  EXPECT_EQ(stats.total_bytes(), 250u);
  EXPECT_EQ(stats.distinct_flows(), 2u);
  const auto ranked = stats.by_rank();
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].flow_id, 3u);
  EXPECT_EQ(ranked[0].packets, 2u);
  EXPECT_EQ(ranked[1].flow_id, 1u);
}

TEST(FlowStats, TopShareOfSingleFlowIsOne) {
  FlowStatsAnalyzer stats;
  PacketRecord rec;
  rec.flow_id = 0;
  for (int i = 0; i < 10; ++i) stats.record(rec);
  EXPECT_DOUBLE_EQ(stats.top_share(1), 1.0);
  EXPECT_DOUBLE_EQ(stats.top_share(100), 1.0);
}

TEST(FlowStats, ResetClears) {
  FlowStatsAnalyzer stats;
  PacketRecord rec;
  stats.record(rec);
  stats.reset();
  EXPECT_EQ(stats.total_packets(), 0u);
}

// ----------------------------------------------------------------- Pcap ---

std::string temp_pcap_path(const std::string& tag) {
  return (std::filesystem::temp_directory_path() / ("laps_test_" + tag + ".pcap"))
      .string();
}

TEST(Pcap, WriterReaderRoundTrip) {
  const std::string path = temp_pcap_path("roundtrip");
  SyntheticTraceSpec spec;
  spec.num_flows = 100;
  spec.seed = 9;
  SyntheticTrace trace(spec);

  std::vector<PacketRecord> written;
  {
    PcapWriter writer(path, /*snaplen=*/128);
    for (int i = 0; i < 500; ++i) {
      const auto rec = trace.next();
      writer.write(static_cast<std::uint64_t>(i) * 1000, *rec);
      written.push_back(*rec);
    }
    EXPECT_EQ(writer.written(), 500u);
  }

  PcapReader reader(path);
  for (int i = 0; i < 500; ++i) {
    const auto pkt = reader.next();
    ASSERT_TRUE(pkt) << "packet " << i;
    EXPECT_EQ(pkt->record.tuple, written[i].tuple) << "packet " << i;
    EXPECT_EQ(pkt->record.size_bytes,
              std::max<std::uint16_t>(written[i].size_bytes, 28));
  }
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.parsed(), 500u);
  EXPECT_EQ(reader.skipped(), 0u);
  std::filesystem::remove(path);
}

TEST(Pcap, TimestampsPreservedAtUsecResolution) {
  const std::string path = temp_pcap_path("timestamps");
  {
    PcapWriter writer(path);
    PacketRecord rec;
    rec.tuple = FiveTuple{1, 2, 3, 4, 6};
    writer.write(1'234'567'890'123ULL, rec);  // sub-usec part is dropped
  }
  PcapReader reader(path);
  const auto pkt = reader.next();
  ASSERT_TRUE(pkt);
  EXPECT_EQ(pkt->ts_nanos, 1'234'567'890'000ULL);  // truncated to usec
  std::filesystem::remove(path);
}

TEST(Pcap, FlowIdsAreDenseFirstAppearance) {
  const std::string path = temp_pcap_path("flowids");
  {
    PcapWriter writer(path);
    PacketRecord a, b;
    a.tuple = FiveTuple{1, 2, 3, 4, 6};
    b.tuple = FiveTuple{5, 6, 7, 8, 17};
    writer.write(0, a);
    writer.write(1, b);
    writer.write(2, a);
  }
  PcapReader reader(path);
  EXPECT_EQ(reader.next()->record.flow_id, 0u);
  EXPECT_EQ(reader.next()->record.flow_id, 1u);
  EXPECT_EQ(reader.next()->record.flow_id, 0u);
  std::filesystem::remove(path);
}

TEST(Pcap, RejectsGarbageFile) {
  const std::string path = temp_pcap_path("garbage");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("this is not a pcap file at all, not even close", f);
    std::fclose(f);
  }
  EXPECT_THROW(PcapReader reader(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Pcap, RejectsMissingFile) {
  EXPECT_THROW(PcapReader reader("/nonexistent/file.pcap"),
               std::runtime_error);
}

// ------------------------------------------------- Pcap hostile corpus ---
// Malformed and adversarial files must produce typed PcapError throws (or
// clean EOF for a packetless file) — never UB, never attacker-sized
// allocations.

void write_bytes(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(b.data(), 1, b.size(), f);
  std::fclose(f);
}

/// Little-endian usec-magic global header with the given snaplen.
std::vector<std::uint8_t> global_header(std::uint32_t snaplen = 65535) {
  std::vector<std::uint8_t> out(24, 0);
  const std::uint32_t magic = 0xA1B2C3D4;
  const std::uint32_t link = 1;  // Ethernet
  std::memcpy(out.data(), &magic, 4);
  std::memcpy(out.data() + 16, &snaplen, 4);
  std::memcpy(out.data() + 20, &link, 4);
  return out;
}

void append_u32s(std::vector<std::uint8_t>& out,
                 std::initializer_list<std::uint32_t> vals) {
  for (std::uint32_t v : vals) {
    const std::size_t at = out.size();
    out.resize(at + 4);
    std::memcpy(out.data() + at, &v, 4);
  }
}

TEST(PcapHostile, TruncatedGlobalHeader) {
  const std::string path = temp_pcap_path("trunc_global");
  auto bytes = global_header();
  bytes.resize(10);
  write_bytes(path, bytes);
  EXPECT_THROW(PcapReader reader(path), PcapError);
  std::filesystem::remove(path);
}

TEST(PcapHostile, BadMagicIsTyped) {
  const std::string path = temp_pcap_path("bad_magic");
  auto bytes = global_header();
  bytes[0] = 0xDE;
  bytes[1] = 0xAD;
  write_bytes(path, bytes);
  EXPECT_THROW(PcapReader reader(path), PcapError);
  std::filesystem::remove(path);
}

TEST(PcapHostile, ZeroPacketFileIsCleanEof) {
  const std::string path = temp_pcap_path("zero_packets");
  write_bytes(path, global_header());
  PcapReader reader(path);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());  // stays EOF, no throw
  EXPECT_EQ(reader.parsed(), 0u);
  EXPECT_EQ(reader.skipped(), 0u);
  std::filesystem::remove(path);
}

TEST(PcapHostile, TruncatedRecordHeader) {
  const std::string path = temp_pcap_path("trunc_rec_hdr");
  auto bytes = global_header();
  append_u32s(bytes, {1, 0});  // 8 of the 16 record-header bytes
  write_bytes(path, bytes);
  PcapReader reader(path);
  EXPECT_THROW(reader.next(), PcapError);
  std::filesystem::remove(path);
}

TEST(PcapHostile, TruncatedRecordBody) {
  const std::string path = temp_pcap_path("trunc_rec_body");
  auto bytes = global_header();
  append_u32s(bytes, {1, 0, 100, 100});  // claims 100 bytes of data
  bytes.push_back(0x45);                 // delivers 1
  write_bytes(path, bytes);
  PcapReader reader(path);
  EXPECT_THROW(reader.next(), PcapError);
  std::filesystem::remove(path);
}

TEST(PcapHostile, AbsurdInclLenRejectedBeforeAllocation) {
  const std::string path = temp_pcap_path("absurd_incl");
  auto bytes = global_header();
  append_u32s(bytes, {1, 0, 0xFFFFFFF0u, 0xFFFFFFF0u});
  write_bytes(path, bytes);
  PcapReader reader(path);
  EXPECT_THROW(reader.next(), PcapError);
  std::filesystem::remove(path);
}

TEST(PcapHostile, HostileSnaplenCannotWrapTheBound) {
  // snaplen near UINT32_MAX once made `snaplen + 65536` wrap to a tiny
  // bound in 32-bit arithmetic; the bound must stay sane (clamped to
  // libpcap's MAXIMUM_SNAPLEN) whatever the header claims.
  const std::string path = temp_pcap_path("hostile_snaplen");
  auto bytes = global_header(0xFFFFFFF0u);
  append_u32s(bytes, {1, 0, 400000, 400000});  // > 262144 + 65536
  write_bytes(path, bytes);
  PcapReader reader(path);
  EXPECT_THROW(reader.next(), PcapError);
  std::filesystem::remove(path);
}

TEST(PcapHostile, RuntHeadersAreSkippedNotFatal) {
  const std::string path = temp_pcap_path("runt");
  auto bytes = global_header();
  // Record 1: 14-byte Ethernet header claiming IPv4 but no IP header.
  append_u32s(bytes, {1, 0, 14, 14});
  const std::uint8_t eth[14] = {0, 0, 0, 0, 0, 0, 0,
                                0, 0, 0, 0, 0, 0x08, 0x00};
  bytes.insert(bytes.end(), eth, eth + 14);
  // Record 2: truncated IPv4 header (IHL says 20, only 16 present).
  append_u32s(bytes, {2, 0, 30, 30});
  std::vector<std::uint8_t> partial(30, 0);
  partial[12] = 0x08;
  partial[14] = 0x45;  // v4, IHL 5 — but the frame ends inside the header
  bytes.insert(bytes.end(), partial.begin(), partial.end());
  write_bytes(path, bytes);
  PcapReader reader(path);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.skipped(), 2u);
  std::filesystem::remove(path);
}

TEST(Pcap, SkipsNonIpPackets) {
  const std::string path = temp_pcap_path("nonip");
  {
    // Hand-craft a file: one ARP frame then one UDP frame via the writer's
    // format. Easiest: write a valid file, then append an ARP record.
    PcapWriter writer(path);
    PacketRecord rec;
    rec.tuple = FiveTuple{1, 2, 3, 4, 17};
    writer.write(0, rec);
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    // Record header: ts=1, incl=orig=14 (Ethernet only, EtherType ARP).
    const std::uint32_t hdr[4] = {1, 0, 14, 14};
    std::fwrite(hdr, 4, 4, f);
    const std::uint8_t arp[14] = {0, 0, 0, 0, 0, 0, 0,
                                  0, 0, 0, 0, 0, 0x08, 0x06};
    std::fwrite(arp, 1, 14, f);
    std::fclose(f);
  }
  PcapReader reader(path);
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.skipped(), 1u);
  std::filesystem::remove(path);
}

// The classic interrupted-tcpdump artifact: a capture that is valid up to
// some record, then stops mid-record. The error must carry the file, the
// byte offset of the bad record, and a human reason — and it must stay an
// error when the trace is replayed through the sharing layer, not decay
// into a clean (shorter!) end-of-trace.

TEST(PcapHostile, TruncationErrorCarriesFileOffsetReason) {
  const std::string path = temp_pcap_path("typed_trunc");
  auto bytes = global_header();
  append_u32s(bytes, {1, 0, 100, 100});  // claims 100 bytes of data
  bytes.push_back(0x45);                 // delivers 1
  write_bytes(path, bytes);
  PcapReader reader(path);
  try {
    reader.next();
    FAIL() << "truncated body did not throw";
  } catch (const PcapError& e) {
    EXPECT_TRUE(e.has_location());
    EXPECT_EQ(e.path(), path);
    EXPECT_EQ(e.offset(), 24u);  // the bad record starts after the header
    EXPECT_NE(e.reason().find("truncated record body"), std::string::npos)
        << e.reason();
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("at byte 24"), std::string::npos);
  }
  std::filesystem::remove(path);
}

TEST(PcapHostile, ErrorOffsetPointsAtTheBadRecordNotTheFileStart) {
  const std::string path = temp_pcap_path("typed_offset");
  auto bytes = global_header();
  // Good record: 14-byte ARP frame (skipped, but consumed cleanly).
  append_u32s(bytes, {1, 0, 14, 14});
  const std::uint8_t arp[14] = {0, 0, 0, 0, 0, 0, 0,
                                0, 0, 0, 0, 0, 0x08, 0x06};
  bytes.insert(bytes.end(), arp, arp + 14);
  // Bad record: only 8 of the 16 header bytes.
  append_u32s(bytes, {2, 0});
  write_bytes(path, bytes);
  PcapReader reader(path);
  try {
    reader.next();
    FAIL() << "truncated header did not throw";
  } catch (const PcapError& e) {
    EXPECT_TRUE(e.has_location());
    EXPECT_EQ(e.offset(), 24u + 16u + 14u);  // global hdr + record 1
    EXPECT_NE(e.reason().find("truncated record header"), std::string::npos)
        << e.reason();
  }
  std::filesystem::remove(path);
}

TEST(PcapHostile, MessageOnlyErrorsReportNoLocation) {
  try {
    PcapReader reader("/nonexistent/file.pcap");
    FAIL() << "missing file did not throw";
  } catch (const PcapError& e) {
    EXPECT_FALSE(e.has_location());
  }
}

/// Yields `good` synthetic records, then throws PcapError forever — the
/// in-memory shape of a capture truncated mid-run.
class TruncatedSource final : public TraceSource {
 public:
  TruncatedSource(std::size_t good, std::string path)
      : good_(good), path_(std::move(path)), trace_(SyntheticTraceSpec{}) {}

  std::optional<PacketRecord> next() override {
    if (emitted_ >= good_) {
      throw PcapError(path_, 24 + 30 * good_, "truncated record body");
    }
    ++emitted_;
    return trace_.next();
  }
  void reset() override { throw std::logic_error("not resettable"); }
  std::string name() const override { return path_; }

 private:
  std::size_t good_;
  std::size_t emitted_ = 0;
  std::string path_;
  SyntheticTrace trace_;
};

TEST(TraceStore, SourceErrorIsStickyNotCleanEof) {
  TraceStore store;
  store.register_trace("truncated", [] {
    return std::make_shared<TruncatedSource>(5, "truncated.pcap");
  });

  // First cursor materializes the 5 good records, then hits the error.
  auto a = store.open("truncated");
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(a->next().has_value()) << i;
  EXPECT_THROW(a->next(), PcapError);

  // A second cursor re-reads the published prefix fine — but the tail must
  // rethrow the SAME typed error. Before the sticky-error fix the backing
  // re-polled the dead source, whose second read reported clean EOF,
  // silently shortening the trace.
  auto b = store.open("truncated");
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(b->next().has_value()) << i;
  try {
    b->next();
    FAIL() << "re-fetch past the error returned clean EOF";
  } catch (const PcapError& e) {
    EXPECT_EQ(e.path(), "truncated.pcap");
    EXPECT_EQ(e.offset(), 24u + 30u * 5u);
    EXPECT_NE(e.reason().find("truncated record body"), std::string::npos);
  }
  // The error also must not have been recorded as an end position.
  EXPECT_EQ(store.materialized("truncated"), 5u);
}

TEST(TraceStore, TruncatedPcapFileSurfacesTypedErrorThroughTheStore) {
  const std::string path = temp_pcap_path("store_trunc");
  auto bytes = global_header();
  append_u32s(bytes, {1, 0, 100, 100});
  bytes.push_back(0x45);
  write_bytes(path, bytes);

  TraceStore store;
  store.register_trace("capture",
                       [path] { return std::make_shared<PcapTrace>(path); });
  auto cursor = store.open("capture");
  try {
    cursor->next();
    FAIL() << "truncated capture did not throw through the store";
  } catch (const PcapError& e) {
    EXPECT_TRUE(e.has_location());
    EXPECT_EQ(e.path(), path);
    EXPECT_EQ(e.offset(), 24u);
  }
  // Still an error on the next read — and on a fresh cursor.
  EXPECT_THROW(cursor->next(), PcapError);
  EXPECT_THROW(store.open("capture")->next(), PcapError);
  std::filesystem::remove(path);
}

TEST(ReplayStream, PropagatesTraceTruncationAsTypedError) {
  // A truncated trace feeding the generator must fail ReplayStream::record
  // with the typed error, not produce a silently shorter arrival sequence.
  TraceStore store;
  store.register_trace("truncated", [] {
    return std::make_shared<TruncatedSource>(3, "truncated.pcap");
  });
  ServiceTraffic s;
  s.path = ServicePath::kIpForward;
  s.rate = HoltWintersParams{5.0, 0.0, 0.0, 10.0, 0.0};  // plenty of packets
  s.trace = store.open("truncated");
  auto drain = [&s] {
    PacketGenerator gen({s}, 3, 0.01);
    ReplayStream::record(gen);
  };
  EXPECT_THROW(drain(), PcapError);
}

TEST(PcapTrace, ActsAsTraceSource) {
  const std::string path = temp_pcap_path("source");
  SyntheticTraceSpec spec;
  spec.num_flows = 50;
  SyntheticTrace synth(spec);
  {
    PcapWriter writer(path);
    for (int i = 0; i < 100; ++i) writer.write(i, *synth.next());
  }
  PcapTrace trace(path);
  int n = 0;
  while (trace.next()) ++n;
  EXPECT_EQ(n, 100);
  // reset() reopens and replays.
  trace.reset();
  EXPECT_TRUE(trace.next().has_value());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace laps
