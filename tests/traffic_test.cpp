// Tests for src/traffic: Holt-Winters rate model (Eq. 1 / Table IV), the
// processing-delay model (Eqs. 3-5 / Table III), and the multi-service
// packet generator.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include "trace/synthetic.h"
#include "traffic/generator.h"
#include "traffic/holt_winters.h"
#include "traffic/workload.h"

namespace laps {
namespace {

// ----------------------------------------------------------- HoltWinters ---

TEST(HoltWinters, Table4HasBothSets) {
  const auto set1 = table4_params(1);
  const auto set2 = table4_params(2);
  ASSERT_EQ(set1.size(), kNumServices);
  ASSERT_EQ(set2.size(), kNumServices);
  EXPECT_DOUBLE_EQ(set1[0].a, 1.0);
  EXPECT_DOUBLE_EQ(set1[1].a, 1.8);
  EXPECT_DOUBLE_EQ(set2[0].a, 1.5);
  EXPECT_DOUBLE_EQ(set2[3].m, 200.0);
  EXPECT_THROW(table4_params(3), std::invalid_argument);
}

TEST(HoltWinters, MeanRateFollowsComponents) {
  HoltWintersParams p{2.0, 0.1, 0.0, 10.0, 0.0};
  HoltWintersRate rate(p, 1);
  EXPECT_DOUBLE_EQ(rate.mean_rate_mpps(0.0), 2.0);
  EXPECT_DOUBLE_EQ(rate.mean_rate_mpps(10.0), 3.0);  // +b*t
}

TEST(HoltWinters, SeasonalComponentIsPeriodic) {
  HoltWintersParams p{1.0, 0.0, 0.5, 4.0, 0.0};
  HoltWintersRate rate(p, 1);
  for (double t : {0.3, 1.1, 2.7}) {
    EXPECT_NEAR(rate.mean_rate_mpps(t), rate.mean_rate_mpps(t + 4.0), 1e-9);
    EXPECT_NEAR(rate.mean_rate_mpps(t), rate.mean_rate_mpps(t + 8.0), 1e-9);
  }
  // Peak at quarter period.
  EXPECT_NEAR(rate.mean_rate_mpps(1.0), 1.5, 1e-9);
}

TEST(HoltWinters, NoiseIsDeterministicPureFunction) {
  HoltWintersParams p{1.0, 0.0, 0.0, 10.0, 0.3};
  HoltWintersRate a(p, 42), b(p, 42);
  for (double t : {0.0, 0.05, 1.23, 17.7}) {
    EXPECT_DOUBLE_EQ(a.rate_mpps(t), b.rate_mpps(t));
  }
  HoltWintersRate c(p, 43);
  EXPECT_NE(a.rate_mpps(1.23), c.rate_mpps(1.23));
}

TEST(HoltWinters, NoisePiecewiseConstantWithinInterval) {
  HoltWintersParams p{1.0, 0.0, 0.0, 10.0, 0.5};
  HoltWintersRate rate(p, 7, /*noise_interval=*/0.1);
  EXPECT_DOUBLE_EQ(rate.rate_mpps(0.51), rate.rate_mpps(0.59));
  // Across interval boundaries the noise redraws (almost surely different).
  EXPECT_NE(rate.rate_mpps(0.59), rate.rate_mpps(0.61));
}

TEST(HoltWinters, RateNeverBelowFloor) {
  HoltWintersParams p{0.0, -1.0, 0.0, 10.0, 0.0};  // strongly negative trend
  HoltWintersRate rate(p, 1);
  EXPECT_GE(rate.rate_mpps(100.0), HoltWintersRate::floor_mpps);
}

TEST(HoltWinters, BoundDominatesRate) {
  for (int set : {1, 2}) {
    for (const auto& p : table4_params(set)) {
      HoltWintersRate rate(p, 3);
      const double bound = rate.rate_bound_mpps(60.0);
      for (double t = 0; t < 60.0; t += 0.37) {
        ASSERT_LE(rate.rate_mpps(t), bound) << "set " << set << " t=" << t;
      }
    }
  }
}

TEST(HoltWinters, RejectsBadConstruction) {
  HoltWintersParams p;
  EXPECT_THROW(HoltWintersRate(p, 1, 0.0), std::invalid_argument);
  p.m = 0.0;
  EXPECT_THROW(HoltWintersRate(p, 1), std::invalid_argument);
}

// ------------------------------------------------------------ DelayModel ---

TEST(DelayModel, PaperConstants) {
  DelayModel d;
  // Path 2 (IP forwarding): 0.5 us flat.
  EXPECT_EQ(d.proc_time(ServicePath::kIpForward, 64), from_us(0.5));
  EXPECT_EQ(d.proc_time(ServicePath::kIpForward, 1500), from_us(0.5));
  // Path 3 (scan): 3.53 us flat.
  EXPECT_EQ(d.proc_time(ServicePath::kMalwareScan, 64), from_us(3.53));
  // Path 1 (Eq. 4): 3.7 + (size/64)*0.23 us.
  EXPECT_EQ(d.proc_time(ServicePath::kVpnOut, 64), from_us(3.7 + 0.23));
  EXPECT_EQ(d.proc_time(ServicePath::kVpnOut, 640), from_us(3.7 + 2.3));
  // Path 4 (Eq. 5): 5.8 + (size/64)*0.21 us.
  EXPECT_EQ(d.proc_time(ServicePath::kVpnInScan, 128), from_us(5.8 + 0.42));
}

TEST(DelayModel, PenaltiesAreAdditive) {
  DelayModel d;
  const TimeNs base = d.proc_time(ServicePath::kIpForward, 64);
  EXPECT_EQ(d.packet_delay(ServicePath::kIpForward, 64, false, false), base);
  EXPECT_EQ(d.packet_delay(ServicePath::kIpForward, 64, true, false),
            base + from_us(0.8));
  EXPECT_EQ(d.packet_delay(ServicePath::kIpForward, 64, false, true),
            base + from_us(10.0));
  EXPECT_EQ(d.packet_delay(ServicePath::kIpForward, 64, true, true),
            base + from_us(10.8));
}

TEST(DelayModel, MeanProcTimeWeightsSizes) {
  DelayModel d;
  const double mean =
      d.mean_proc_time_us(ServicePath::kVpnOut, {64, 128}, {0.5, 0.5});
  EXPECT_NEAR(mean, 0.5 * (3.7 + 0.23) + 0.5 * (3.7 + 0.46), 1e-6);
  EXPECT_THROW(d.mean_proc_time_us(ServicePath::kVpnOut, {64}, {0.5, 0.5}),
               std::invalid_argument);
}

TEST(ServiceName, AllPathsNamed) {
  std::set<std::string> names;
  for (std::size_t s = 0; s < kNumServices; ++s) {
    names.insert(service_name(static_cast<ServicePath>(s)));
  }
  EXPECT_EQ(names.size(), kNumServices);
}

// -------------------------------------------------------- PacketGenerator ---

std::vector<ServiceTraffic> one_service(double mpps, double seconds_unused = 0) {
  static_cast<void>(seconds_unused);
  ServiceTraffic s;
  s.path = ServicePath::kIpForward;
  s.rate = HoltWintersParams{mpps, 0.0, 0.0, 10.0, 0.0};
  SyntheticTraceSpec spec;
  spec.num_flows = 1000;
  spec.seed = 3;
  s.trace = std::make_shared<SyntheticTrace>(spec);
  return {s};
}

TEST(PacketGenerator, RejectsBadInput) {
  EXPECT_THROW(PacketGenerator({}, 1, 1.0), std::invalid_argument);
  auto services = one_service(1.0);
  EXPECT_THROW(PacketGenerator(services, 1, 0.0), std::invalid_argument);
  services[0].trace = nullptr;
  EXPECT_THROW(PacketGenerator(services, 1, 1.0), std::invalid_argument);
}

TEST(PacketGenerator, TimesAreNondecreasingAndBounded) {
  PacketGenerator gen(one_service(0.5), 7, 0.01);
  TimeNs prev = 0;
  int n = 0;
  while (const auto pkt = gen.next()) {
    ASSERT_GE(pkt->time, prev);
    ASSERT_LE(pkt->time, from_seconds(0.01));
    prev = pkt->time;
    ++n;
  }
  EXPECT_GT(n, 0);
}

TEST(PacketGenerator, RateMatchesPoissonMean) {
  // 2 Mpps over 20 ms -> expected 40k packets, sd ~200.
  PacketGenerator gen(one_service(2.0), 11, 0.02);
  int n = 0;
  while (gen.next()) ++n;
  EXPECT_NEAR(n, 40'000, 1'200);
}

TEST(PacketGenerator, DeterministicForSeed) {
  PacketGenerator a(one_service(1.0), 5, 0.005);
  PacketGenerator b(one_service(1.0), 5, 0.005);
  while (true) {
    const auto pa = a.next();
    const auto pb = b.next();
    ASSERT_EQ(pa.has_value(), pb.has_value());
    if (!pa) break;
    ASSERT_EQ(pa->time, pb->time);
    ASSERT_EQ(pa->gflow, pb->gflow);
  }
}

TEST(PacketGenerator, SeedChangesArrivals) {
  PacketGenerator a(one_service(1.0), 5, 0.002);
  PacketGenerator b(one_service(1.0), 6, 0.002);
  const auto pa = a.next();
  const auto pb = b.next();
  ASSERT_TRUE(pa && pb);
  EXPECT_NE(pa->time, pb->time);
}

TEST(PacketGenerator, MultiServiceGlobalFlowsDisjoint) {
  std::vector<ServiceTraffic> services;
  for (int i = 0; i < 4; ++i) {
    ServiceTraffic s;
    s.path = static_cast<ServicePath>(i);
    s.rate = HoltWintersParams{0.5, 0.0, 0.0, 10.0, 0.0};
    SyntheticTraceSpec spec;
    spec.num_flows = 100;
    spec.seed = 50 + static_cast<std::uint64_t>(i);
    s.trace = std::make_shared<SyntheticTrace>(spec);
    services.push_back(std::move(s));
  }
  PacketGenerator gen(services, 8, 0.01);
  EXPECT_EQ(gen.total_flows(), 400u);

  std::vector<std::set<std::uint32_t>> flows(4);
  while (const auto pkt = gen.next()) {
    flows[static_cast<std::size_t>(pkt->service)].insert(pkt->gflow);
  }
  // Each service's gflow range is its own 100-wide window.
  for (int i = 0; i < 4; ++i) {
    ASSERT_FALSE(flows[i].empty()) << "service " << i;
    EXPECT_GE(*flows[i].begin(), static_cast<std::uint32_t>(i * 100));
    EXPECT_LT(*flows[i].rbegin(), static_cast<std::uint32_t>((i + 1) * 100));
  }
}

TEST(PacketGenerator, WrapsFiniteTraces) {
  // A tiny 3-packet pcap-like vector trace, wrapped many times.
  class TinyTrace final : public TraceSource {
   public:
    std::optional<PacketRecord> next() override {
      if (i_ == 3) return std::nullopt;
      PacketRecord rec;
      rec.flow_id = i_++;
      rec.tuple.src_ip = rec.flow_id + 1;
      return rec;
    }
    void reset() override { i_ = 0; }
    std::size_t flow_count_hint() const override { return 3; }
    std::string name() const override { return "tiny"; }

   private:
    std::uint32_t i_ = 0;
  };
  ServiceTraffic s;
  s.path = ServicePath::kIpForward;
  s.rate = HoltWintersParams{1.0, 0.0, 0.0, 10.0, 0.0};
  s.trace = std::make_shared<TinyTrace>();
  PacketGenerator gen({s}, 2, 0.001);
  int n = 0;
  while (const auto pkt = gen.next()) {
    ASSERT_LT(pkt->gflow, 3u);
    ++n;
  }
  EXPECT_GT(n, 100);  // ~1000 expected; the trace wrapped repeatedly
}

// ---------------------------------------------------- Load calibration ---

TEST(LoadCalibration, OfferedLoadMatchesHandComputation) {
  // One service, 1 Mpps flat, all 64 B packets on IP forwarding (0.5 us):
  // 1e6 pkt/s * 0.5e-6 s = 0.5 core-equivalents; on 16 cores -> 0.03125.
  auto services = one_service(1.0);
  auto spec = SyntheticTraceSpec{};
  spec.num_flows = 100;
  spec.size_bytes = {64};
  spec.size_weights = {1.0};
  services[0].trace = std::make_shared<SyntheticTrace>(spec);
  DelayModel delay;
  EXPECT_NEAR(mean_offered_load(services, delay, 16, 1.0), 0.5 / 16.0, 1e-6);
}

TEST(LoadCalibration, ScaleToLoadHitsTarget) {
  std::vector<ServiceTraffic> services;
  const auto params = table4_params(1);
  for (int i = 0; i < 4; ++i) {
    ServiceTraffic s;
    s.path = static_cast<ServicePath>(i);
    s.rate = params[i];
    s.trace = make_trace(trace_registry_names()[i]);
    services.push_back(std::move(s));
  }
  DelayModel delay;
  const auto scaled = scale_to_load(services, delay, 16, 10.0, 0.85);
  EXPECT_NEAR(mean_offered_load(scaled, delay, 16, 10.0), 0.85, 1e-6);
  // Relative service mix is preserved.
  EXPECT_NEAR(scaled[0].rate.a / scaled[1].rate.a,
              params[0].a / params[1].a, 1e-9);
}

TEST(LoadCalibration, RejectsBadArguments) {
  auto services = one_service(1.0);
  DelayModel delay;
  EXPECT_THROW(mean_offered_load(services, delay, 0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(mean_offered_load(services, delay, 16, 0.0),
               std::invalid_argument);
}

// ------------------------------------------------------- ReplayStream fork ---

std::vector<GeneratedPacket> drain(ArrivalStream& s) {
  std::vector<GeneratedPacket> out;
  while (const auto pkt = s.next()) out.push_back(*pkt);
  return out;
}

bool same_packets(const std::vector<GeneratedPacket>& a,
                  const std::vector<GeneratedPacket>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].time != b[i].time || a[i].gflow != b[i].gflow ||
        a[i].service != b[i].service ||
        a[i].record.flow_id != b[i].record.flow_id ||
        !(a[i].record.tuple == b[i].record.tuple)) {
      return false;
    }
  }
  return true;
}

// The multi-consumer contract the cluster layer depends on: forks share one
// immutable recording but advance independent cursors, so N shards (or N
// grid rows) can each replay the identical stream with no re-recording and
// no cross-talk.
TEST(ReplayFork, ForksAreIndependentDeterministicCursors) {
  PacketGenerator gen(one_service(2.0), 11, 0.005);
  ReplayStream original = ReplayStream::record(gen);
  const std::vector<GeneratedPacket> golden = drain(original);
  ASSERT_FALSE(golden.empty());

  // Two forks, drained with interleaved next() calls, each see the full
  // sequence from the start.
  ReplayStream a = original.fork();
  ReplayStream b = original.fork();
  std::vector<GeneratedPacket> from_a;
  std::vector<GeneratedPacket> from_b;
  for (;;) {
    const auto pa = a.next();
    const auto pb = b.next();
    ASSERT_EQ(pa.has_value(), pb.has_value());
    if (!pa) break;
    from_a.push_back(*pa);
    from_b.push_back(*pb);
  }
  EXPECT_TRUE(same_packets(from_a, golden));
  EXPECT_TRUE(same_packets(from_b, golden));
  EXPECT_EQ(a.total_flows(), original.total_flows());

  // Forking a partially-consumed stream still starts at packet 0, and does
  // not disturb the parent's cursor.
  original.rewind();
  for (int i = 0; i < 3; ++i) original.next();
  ReplayStream fresh = original.fork();
  EXPECT_TRUE(same_packets(drain(fresh), golden));
  std::vector<GeneratedPacket> rest = drain(original);
  ASSERT_EQ(rest.size(), golden.size() - 3);
  EXPECT_EQ(rest.front().time, golden[3].time);

  // rewind() still restarts the parent after forks exist.
  original.rewind();
  EXPECT_TRUE(same_packets(drain(original), golden));
}

}  // namespace
}  // namespace laps
