// Tests for src/util: CRC, flow tuples, RNG, samplers, histogram, flags,
// table printing.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/crc.h"
#include "util/flags.h"
#include "util/flow.h"
#include "util/histogram.h"
#include "util/rng.h"
#include "util/samplers.h"
#include "util/tableio.h"
#include "util/time.h"

namespace laps {
namespace {

// ---------------------------------------------------------------- CRC16 ---

TEST(Crc16, KnownVector123456789) {
  // CRC16-CCITT (0xFFFF init, "false" reflect) of "123456789" is 0x29B1.
  const std::string s = "123456789";
  const auto* data = reinterpret_cast<const std::uint8_t*>(s.data());
  EXPECT_EQ(crc16_ccitt({data, s.size()}), 0x29B1);
}

TEST(Crc16, EmptyInputReturnsInit) {
  EXPECT_EQ(crc16_ccitt({}, 0xFFFF), 0xFFFF);
  EXPECT_EQ(crc16_ccitt({}, 0x1234), 0x1234);
}

TEST(Crc16, SingleByteDiffersFromInit) {
  const std::uint8_t b = 0x00;
  EXPECT_NE(crc16_ccitt({&b, 1}), 0xFFFF);
}

TEST(Crc16, SensitiveToByteOrder) {
  const std::uint8_t ab[] = {0xAB, 0xCD};
  const std::uint8_t ba[] = {0xCD, 0xAB};
  EXPECT_NE(crc16_ccitt({ab, 2}), crc16_ccitt({ba, 2}));
}

TEST(Crc32, KnownVector123456789) {
  // CRC32 (IEEE) of "123456789" is 0xCBF43926.
  const std::string s = "123456789";
  const auto* data = reinterpret_cast<const std::uint8_t*>(s.data());
  EXPECT_EQ(crc32_ieee({data, s.size()}), 0xCBF43926u);
}

TEST(Crc16, SpreadsFlowTuplesUniformly) {
  // The reason the paper picks CRC16: hashing IP 5-tuples should spread
  // close to uniformly across buckets. Chi-squared sanity check over 16
  // buckets with 40k distinct tuples.
  constexpr int kBuckets = 16;
  constexpr int kTuples = 40'000;
  std::vector<int> hist(kBuckets, 0);
  for (int i = 0; i < kTuples; ++i) {
    FiveTuple t;
    t.src_ip = 0x0A000000u + static_cast<std::uint32_t>(i);
    t.dst_ip = 0xC0A80001u;
    t.src_port = static_cast<std::uint16_t>(1024 + i % 60000);
    t.dst_port = 443;
    t.protocol = 6;
    ++hist[t.crc16() % kBuckets];
  }
  const double expected = static_cast<double>(kTuples) / kBuckets;
  double chi2 = 0;
  for (int c : hist) chi2 += (c - expected) * (c - expected) / expected;
  // 15 dof, p=0.001 critical value is 37.7; generous margin for stability.
  EXPECT_LT(chi2, 60.0);
}

TEST(Mix64, IsDeterministicAndDispersive) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  // Nearby inputs should differ in many bits.
  const std::uint64_t d = mix64(1000) ^ mix64(1001);
  EXPECT_GT(std::popcount(d), 16);
}

// ------------------------------------------------------------ FiveTuple ---

TEST(FiveTuple, WireBytesLayout) {
  FiveTuple t{0x01020304, 0x05060708, 0x1122, 0x3344, 17};
  const auto bytes = t.wire_bytes();
  EXPECT_EQ(bytes[0], 0x01);
  EXPECT_EQ(bytes[3], 0x04);
  EXPECT_EQ(bytes[4], 0x05);
  EXPECT_EQ(bytes[7], 0x08);
  EXPECT_EQ(bytes[8], 0x11);
  EXPECT_EQ(bytes[9], 0x22);
  EXPECT_EQ(bytes[10], 0x33);
  EXPECT_EQ(bytes[11], 0x44);
  EXPECT_EQ(bytes[12], 17);
}

TEST(FiveTuple, EqualityAndOrdering) {
  FiveTuple a{1, 2, 3, 4, 6};
  FiveTuple b = a;
  EXPECT_EQ(a, b);
  b.dst_port = 5;
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

TEST(FiveTuple, Key64CollisionFreeOnPopulation) {
  std::set<std::uint64_t> keys;
  constexpr int kFlows = 100'000;
  for (int i = 0; i < kFlows; ++i) {
    FiveTuple t;
    t.src_ip = 0x0A000000u + static_cast<std::uint32_t>(i);
    t.dst_ip = static_cast<std::uint32_t>(mix64(i) >> 32);
    t.src_port = static_cast<std::uint16_t>(i * 7);
    t.dst_port = 80;
    t.protocol = 6;
    keys.insert(t.key64());
  }
  EXPECT_EQ(keys.size(), static_cast<std::size_t>(kFlows));
}

TEST(FiveTuple, ToStringFormats) {
  FiveTuple t{0xC0A80101, 0x08080808, 1234, 53, 17};
  EXPECT_EQ(t.to_string(), "192.168.1.1:1234 -> 8.8.8.8:53/17");
}

TEST(Ipv4ToString, Corners) {
  EXPECT_EQ(ipv4_to_string(0), "0.0.0.0");
  EXPECT_EQ(ipv4_to_string(0xFFFFFFFF), "255.255.255.255");
  EXPECT_EQ(ipv4_to_string(0x7F000001), "127.0.0.1");
}

// ------------------------------------------------------------------ RNG ---

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Rng, StreamsAreIndependent) {
  Rng base(7);
  Rng s0 = base.stream(0);
  Rng s1 = base.stream(1);
  EXPECT_NE(s0.next(), s1.next());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, BelowIsUnbiased) {
  Rng rng(5);
  constexpr std::uint64_t n = 7;
  std::vector<int> hist(n, 0);
  for (int i = 0; i < 70'000; ++i) ++hist[rng.below(n)];
  for (std::uint64_t k = 0; k < n; ++k) {
    EXPECT_NEAR(hist[k], 10'000, 400) << "bucket " << k;
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.chance(0.3);
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

// ------------------------------------------------------------- Samplers ---

TEST(ZipfSampler, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, 0.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler z(1000, 1.1);
  double sum = 0;
  for (std::size_t k = 0; k < z.size(); ++k) sum += z.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSampler, PmfIsMonotoneDecreasing) {
  ZipfSampler z(100, 1.3);
  for (std::size_t k = 1; k < z.size(); ++k) {
    EXPECT_LE(z.pmf(k), z.pmf(k - 1)) << "rank " << k;
  }
}

TEST(ZipfSampler, EmpiricalMatchesPmfAtHead) {
  ZipfSampler z(10'000, 1.2);
  Rng rng(42);
  constexpr int kDraws = 200'000;
  std::vector<int> hist(16, 0);
  for (int i = 0; i < kDraws; ++i) {
    const std::size_t r = z.sample(rng);
    if (r < hist.size()) ++hist[r];
  }
  for (std::size_t k = 0; k < hist.size(); ++k) {
    const double expected = z.pmf(k) * kDraws;
    EXPECT_NEAR(hist[k], expected, 5 * std::sqrt(expected) + 5)
        << "rank " << k;
  }
}

TEST(ZipfSampler, HigherAlphaConcentratesHead) {
  Rng rng1(1), rng2(1);
  ZipfSampler flat(10'000, 1.0), steep(10'000, 1.6);
  int head_flat = 0, head_steep = 0;
  for (int i = 0; i < 50'000; ++i) {
    head_flat += flat.sample(rng1) < 16;
    head_steep += steep.sample(rng2) < 16;
  }
  EXPECT_GT(head_steep, head_flat);
}

TEST(Exponential, MeanMatchesRate) {
  Rng rng(3);
  const double rate = 4.0;
  double sum = 0;
  for (int i = 0; i < 100'000; ++i) sum += sample_exponential(rng, rate);
  EXPECT_NEAR(sum / 100'000, 1.0 / rate, 0.01);
}

TEST(Exponential, RejectsNonPositiveRate) {
  Rng rng(1);
  EXPECT_THROW(sample_exponential(rng, 0.0), std::invalid_argument);
  EXPECT_THROW(sample_exponential(rng, -1.0), std::invalid_argument);
}

TEST(BoundedPareto, StaysInBounds) {
  Rng rng(8);
  for (int i = 0; i < 10'000; ++i) {
    const double x = sample_bounded_pareto(rng, 1.2, 1.0, 1000.0);
    ASSERT_GE(x, 1.0);
    ASSERT_LE(x, 1000.0);
  }
}

TEST(BoundedPareto, RejectsBadParameters) {
  Rng rng(8);
  EXPECT_THROW(sample_bounded_pareto(rng, 0, 1, 10), std::invalid_argument);
  EXPECT_THROW(sample_bounded_pareto(rng, 1, 0, 10), std::invalid_argument);
  EXPECT_THROW(sample_bounded_pareto(rng, 1, 10, 5), std::invalid_argument);
}

TEST(Gaussian, MeanZeroAndSigma) {
  Rng rng(21);
  double sum = 0, sq = 0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double x = sample_gaussian(rng, 2.0);
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(std::sqrt(sq / kN), 2.0, 0.03);
}

TEST(DiscreteSampler, RejectsBadWeights) {
  EXPECT_THROW(DiscreteSampler({}), std::invalid_argument);
  EXPECT_THROW(DiscreteSampler({1.0, -0.5}), std::invalid_argument);
  EXPECT_THROW(DiscreteSampler({0.0, 0.0}), std::invalid_argument);
}

TEST(DiscreteSampler, MatchesWeights) {
  DiscreteSampler d({0.5, 0.25, 0.25});
  Rng rng(77);
  std::vector<int> hist(3, 0);
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) ++hist[d.sample(rng)];
  EXPECT_NEAR(hist[0] / static_cast<double>(kN), 0.50, 0.01);
  EXPECT_NEAR(hist[1] / static_cast<double>(kN), 0.25, 0.01);
  EXPECT_NEAR(hist[2] / static_cast<double>(kN), 0.25, 0.01);
}

TEST(DiscreteSampler, SingleOutcome) {
  DiscreteSampler d({3.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(rng), 0u);
}

TEST(DiscreteSampler, ZeroWeightNeverSampled) {
  DiscreteSampler d({1.0, 0.0, 1.0});
  Rng rng(2);
  for (int i = 0; i < 10'000; ++i) EXPECT_NE(d.sample(rng), 1u);
}

// ------------------------------------------------------------ Histogram ---

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.quantile(0.5), 0);
}

TEST(Histogram, ExactForSmallValues) {
  Histogram h;
  for (int i = 0; i < 32; ++i) h.record(i);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.max(), 31);
  EXPECT_EQ(h.quantile(1.0), 31);
  EXPECT_EQ(h.quantile(0.0), 0);
}

TEST(Histogram, QuantilesWithinRelativeError) {
  Histogram h;
  for (int i = 1; i <= 100'000; ++i) h.record(i);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.5)), 50'000, 50'000 * 0.04);
  EXPECT_NEAR(static_cast<double>(h.quantile(0.99)), 99'000, 99'000 * 0.04);
  EXPECT_EQ(h.max(), 100'000);
  EXPECT_NEAR(h.mean(), 50'000.5, 0.1);
}

TEST(Histogram, NegativeClampedToZero) {
  Histogram h;
  h.record(-100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, MergeCombines) {
  Histogram a, b;
  a.record(10);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 1000);
  EXPECT_EQ(a.sum(), 1010);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.record(5);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h;
  h.record(42);
  EXPECT_NE(h.summary().find("count=1"), std::string::npos);
}

TEST(Histogram, BucketsEmptyHistogram) {
  Histogram h;
  EXPECT_TRUE(h.buckets().empty());
}

TEST(Histogram, BucketsSingleSample) {
  Histogram h;
  h.record(42);
  const auto buckets = h.buckets();
  ASSERT_EQ(buckets.size(), 1u);
  EXPECT_EQ(buckets[0].count, 1u);
  // The sample must fall inside its bucket: upper bound at or above it,
  // and within the documented 1/32 relative bucket error.
  EXPECT_GE(buckets[0].upper_bound, 42);
  EXPECT_LE(buckets[0].upper_bound, 42 + 42 / 32 + 1);
}

TEST(Histogram, BucketsSumToCountAndStaySorted) {
  Histogram h;
  for (int i = 1; i <= 10'000; ++i) h.record(i * 7);
  const auto buckets = h.buckets();
  std::uint64_t total = 0;
  std::int64_t prev = -1;
  for (const auto& b : buckets) {
    EXPECT_GT(b.upper_bound, prev);
    prev = b.upper_bound;
    total += b.count;
  }
  EXPECT_EQ(total, h.count());
}

TEST(Histogram, BucketsAfterMerge) {
  Histogram a, b;
  a.record(10);
  a.record(10);
  b.record(10);
  b.record(5'000);
  a.merge(b);
  const auto buckets = a.buckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].upper_bound, 10);  // exact low range
  EXPECT_EQ(buckets[0].count, 3u);        // 2 from a + 1 from b
  EXPECT_EQ(buckets[1].count, 1u);
  EXPECT_GE(buckets[1].upper_bound, 5'000);
}

TEST(Histogram, LargeValues) {
  Histogram h;
  const std::int64_t big = 3'000'000'000'000LL;  // ~50 min in ns
  h.record(big);
  EXPECT_EQ(h.max(), big);
  const double q = static_cast<double>(h.quantile(1.0));
  EXPECT_NEAR(q, static_cast<double>(big), static_cast<double>(big) * 0.04);
}

// ---------------------------------------------------------------- Flags ---

TEST(Flags, ParsesForms) {
  const char* argv[] = {"prog", "--seconds=2.5", "--full", "--cores=8", "pos"};
  Flags f(5, argv);
  EXPECT_DOUBLE_EQ(f.get_double("seconds", 1.0), 2.5);
  EXPECT_TRUE(f.get_bool("full", false));
  EXPECT_EQ(f.get_int("cores", 16), 8);
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "pos");
  f.finish();
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags f(1, argv);
  EXPECT_EQ(f.get_string("trace", "caida1"), "caida1");
  EXPECT_EQ(f.get_int("k", 16), 16);
  EXPECT_FALSE(f.get_bool("full", false));
  f.finish();
}

TEST(Flags, FinishRejectsUnknown) {
  const char* argv[] = {"prog", "--tpyo=1"};
  Flags f(2, argv);
  EXPECT_THROW(f.finish(), std::runtime_error);
}

TEST(Flags, BoolExplicitValues) {
  const char* argv[] = {"prog", "--a=false", "--b=0", "--c=true", "--d=1"};
  Flags f(5, argv);
  EXPECT_FALSE(f.get_bool("a", true));
  EXPECT_FALSE(f.get_bool("b", true));
  EXPECT_TRUE(f.get_bool("c", false));
  EXPECT_TRUE(f.get_bool("d", false));
  f.finish();
}

TEST(Flags, HexIntegers) {
  const char* argv[] = {"prog", "--seed=0xff"};
  Flags f(2, argv);
  EXPECT_EQ(f.get_int("seed", 0), 255);
  f.finish();
}

// ---------------------------------------------------------------- Table ---

TEST(Table, RejectsEmptyHeadersAndBadRows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RendersAligned) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("| longer"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(1234567)), "1,234,567");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(-1234)), "-1,234");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(999)), "999");
  EXPECT_EQ(Table::pct(0.1234, 1), "12.3%");
}

// ----------------------------------------------------------------- Time ---

TEST(Time, Conversions) {
  EXPECT_EQ(from_us(1.0), 1'000);
  EXPECT_EQ(from_us(0.5), 500);
  EXPECT_EQ(from_us(3.53), 3'530);
  EXPECT_EQ(from_seconds(1.0), kSecond);
  EXPECT_DOUBLE_EQ(to_seconds(kSecond), 1.0);
  EXPECT_DOUBLE_EQ(to_us(1'500), 1.5);
}

}  // namespace
}  // namespace laps
